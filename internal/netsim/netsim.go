// Package netsim provides the simulated message-passing network of the
// paper's system model AS[n,t]: n processes fully connected by reliable,
// non-FIFO, directed links with arbitrary (policy-controlled) transfer
// delays, where processes may crash.
//
// The network realizes exactly the model of §2.1:
//
//   - Links are reliable: messages are never created, altered or lost. A
//     message is dropped only when its receiver has crashed, which is
//     indistinguishable from reception by a dead process.
//   - No bound is assumed on transfer delays; a DelayPolicy chooses each
//     message's delay and an optional Gate can additionally reorder
//     deliveries (used to realize the paper's time-free "winning message"
//     property, which constrains order rather than time).
//   - Processes are crash-stop: after its crash time a process sends,
//     receives and executes nothing.
//
// All activity runs on a deterministic sim.Scheduler, so any run is
// reproducible from its seed.
//
// # Hot-path design
//
// The send/arrive/deliver path is allocation-free in steady state:
//
//   - The network schedules typed events (deliver, timer, start, crash) via
//     sim.Scheduler.AtTyped instead of per-event closures; Network itself is
//     the sim.Handler that demultiplexes them.
//   - Envelopes are recycled through a per-network free list: an envelope
//     returns to the pool once its delivery (or drop) is complete. Observers
//     (OnDeliver, gates, delay policies) must therefore not retain an
//     *Envelope past the callback unless they hold it under the Gate
//     contract; copy the fields instead.
//   - Pooled payloads (wire.Recyclable) are reference-counted by the
//     network: one reference per send, released when that copy's delivery
//     or drop completes, so a broadcast payload returns to its sender's
//     pool exactly when its last recipient is done with it. Receivers must
//     not retain payload pointers past OnMessage — the rule the repository
//     has always had ("immutable by convention once sent").
//   - A message arriving before its receiver's (staggered) start is buffered
//     per process in arrival order and flushed synchronously when the
//     process starts — reliable-link semantics without redelivery polling.
//   - Per-kind counters are fixed arrays indexed by wire.Kind, not maps.
//   - A multicast (proc.Env.Multicast; every protocol broadcast) travels as
//     ONE pooled carrier holding the payload, the destination set and the
//     per-destination deadlines; a single scheduler event walks the legs in
//     deadline order, rescheduling itself after each delivery. The peak
//     in-flight population therefore scales with broadcasts, not with
//     broadcasts × n — while the observable behaviour (delay draws, message
//     seqs, stats, gate and drop semantics, tie-breaking against unrelated
//     events) stays bit-for-bit identical to n unicast sends; see multicast.
package netsim

import (
	"fmt"
	"slices"
	"time"

	"repro/internal/bitset"
	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Envelope is a message in flight on some link.
type Envelope struct {
	// Seq is a unique, deterministic message sequence number.
	Seq uint64
	// From and To are the link endpoints.
	From, To proc.ID
	// Payload is the message itself (usually a wire.Message).
	Payload any
	// SentAt is the virtual time Send was called.
	SentAt sim.Time
	// Released marks an envelope a Gate has already held and released;
	// gates must not hold a released envelope again.
	Released bool
}

// Delay returns how long the envelope has been in flight at time now.
func (e *Envelope) Delay(now sim.Time) time.Duration { return now.Sub(e.SentAt) }

// DelayPolicy decides the transfer delay of each message. Implementations
// live in internal/scenario; they encode the synchrony assumption under test.
type DelayPolicy interface {
	// Delay returns the transfer delay for ev. It is called once per
	// message at send time. r is a deterministic per-network stream.
	Delay(ev *Envelope, r *sim.Rand) time.Duration
}

// DelayFunc adapts a function to the DelayPolicy interface.
type DelayFunc func(ev *Envelope, r *sim.Rand) time.Duration

// Delay implements DelayPolicy.
func (f DelayFunc) Delay(ev *Envelope, r *sim.Rand) time.Duration { return f(ev, r) }

// Gate intercepts deliveries to constrain their order. The paper's "winning
// message" property (Definition 2) is about reception order, not timing, so
// it is enforced at the instant a message would be delivered. now is the
// current virtual time (gates have no other clock access).
type Gate interface {
	// OnArrival is called when ev's transfer delay has elapsed. Return
	// true to deliver now; return false to take ownership of ev and hold
	// it. Held envelopes must eventually be returned from OnDelivered
	// (link reliability is part of the model).
	OnArrival(ev *Envelope, now sim.Time) bool
	// OnDelivered is called after every delivery; the gate may release
	// held envelopes by returning them. Released envelopes are delivered
	// immediately, in order, each triggering its own OnDelivered.
	OnDelivered(ev *Envelope, now sim.Time) []*Envelope
}

// Stats aggregates network-level counters. The per-kind counters are fixed
// arrays indexed by wire.Kind, so Stats is comparable and snapshotting it is
// a plain value copy.
type Stats struct {
	Sent      uint64 // messages handed to the network
	Delivered uint64 // messages delivered to live processes
	Dropped   uint64 // messages addressed to crashed processes
	Bytes     uint64 // encoded size of all sent wire messages
	ByKind    [wire.KindCount]uint64
	BytesKind [wire.KindCount]uint64
}

// Typed event kinds demultiplexed by Network.OnSimEvent.
const (
	evDeliver uint8 = iota + 1 // p = *Envelope
	evTimer                    // a = packTimer(process, key)
	evStart                    // a = process id
	evCrash                    // a = process id
	evRestart                  // a = process id, p = func() proc.Node
	evMcast                    // p = *mcast (next leg of a multicast)
)

func packTimer(id proc.ID, key proc.TimerKey) uint64 {
	if int(int32(key)) != int(key) {
		panic(fmt.Sprintf("netsim: timer key %d overflows the packed event payload", key))
	}
	return uint64(uint32(id))<<32 | uint64(uint32(int32(key)))
}

func unpackTimer(a uint64) (proc.ID, proc.TimerKey) {
	return proc.ID(uint32(a >> 32)), proc.TimerKey(int32(uint32(a)))
}

// Network simulates the complete system: processes plus links.
type Network struct {
	sched       *sim.Scheduler
	rand        *sim.Rand
	policy      DelayPolicy
	gate        Gate
	nodes       []proc.Node
	envs        []*env
	crashed     []bool
	everCrashed []bool
	started     []bool
	preStart    [][]*Envelope // messages arrived before the receiver started
	nextSeq     uint64
	stats       Stats
	churnEpoch  uint64 // bumped on every crash/restart; see ChurnEpoch

	// envFree is the envelope free list; chainBuf is the reusable BFS
	// queue of deliverChain. Both exist to keep the delivery hot path
	// allocation-free in steady state.
	envFree  []*Envelope
	chainBuf []*Envelope

	// mcFree recycles multicast carriers; policyScratch is the stack-in
	// envelope handed to the DelayPolicy for each multicast leg's draw
	// (the policy must not retain envelopes, so one scratch suffices).
	mcFree        []*mcast
	policyScratch Envelope

	// OnDeliver, when non-nil, observes every successful delivery (after
	// the node processed it). The envelope is recycled when the callback
	// returns; copy fields, do not retain the pointer.
	OnDeliver func(ev *Envelope)
	// OnCrashHook, when non-nil, observes crashes.
	OnCrashHook func(id proc.ID, at sim.Time)

	// fault, when non-nil, is the chaos-layer link-fault overlay: it can
	// refuse sends (cuts, loss) and add latency (jitter, slow nodes) on top
	// of the scenario's DelayPolicy. See SetLinkFault.
	fault LinkFault
}

// LinkFault is the chaos overlay seam, mirroring tcpnet.Policy: Admit is
// consulted once per (unicast or multicast-leg) send — a refusal drops the
// message, counted as sent and dropped exactly like the TCP transport's
// policy drops — and Delay adds to the scenario policy's draw. With a
// deterministic implementation the simulation stays a pure function of
// (scenario, seed, fault schedule).
type LinkFault interface {
	Admit(from, to proc.ID) bool
	Delay(from, to proc.ID) time.Duration
}

// SetLinkFault installs the chaos fault overlay (nil removes it). Call
// before the run or from within the event loop; the overlay itself may be
// mutated at any time.
func (n *Network) SetLinkFault(f LinkFault) { n.fault = f }

// Config assembles a Network.
type Config struct {
	N      int
	Seed   uint64
	Policy DelayPolicy // required
	Gate   Gate        // optional
}

// New creates a network of cfg.N processes on sched. Nodes are registered
// with Register and started with StartAll (or StartAt for staggered starts).
func New(sched *sim.Scheduler, cfg Config) (*Network, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("netsim: N must be positive, got %d", cfg.N)
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("netsim: Config.Policy is required")
	}
	n := &Network{
		sched:       sched,
		rand:        sim.NewRand(cfg.Seed ^ 0x6e657473696d2121),
		policy:      cfg.Policy,
		gate:        cfg.Gate,
		nodes:       make([]proc.Node, cfg.N),
		envs:        make([]*env, cfg.N),
		crashed:     make([]bool, cfg.N),
		everCrashed: make([]bool, cfg.N),
		started:     make([]bool, cfg.N),
		preStart:    make([][]*Envelope, cfg.N),
	}
	for i := 0; i < cfg.N; i++ {
		n.envs[i] = &env{net: n, id: i, timers: make(map[proc.TimerKey]sim.EventID)}
	}
	return n, nil
}

// N returns the number of processes.
func (n *Network) N() int { return len(n.nodes) }

// Scheduler returns the underlying scheduler (for running the simulation).
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// Stats returns a snapshot of the network counters.
func (n *Network) Stats() Stats { return n.stats }

// envBlock is how many envelopes a free-list refill allocates at once. The
// in-flight population is not bounded — an order adversary can legally hold
// an ever-growing backlog against a diverging algorithm — so refills are
// batched to keep envelope allocations O(peak/envBlock) instead of O(peak).
const envBlock = 64

// getEnvelope pops a recycled envelope, refilling the free list in blocks.
func (n *Network) getEnvelope() *Envelope {
	if len(n.envFree) == 0 {
		block := make([]Envelope, envBlock)
		for i := range block {
			n.envFree = append(n.envFree, &block[i])
		}
	}
	k := len(n.envFree)
	ev := n.envFree[k-1]
	n.envFree = n.envFree[:k-1]
	return ev
}

// putEnvelope returns a fully-delivered (or dropped) envelope to the pool.
// This is the payload recycle point: every consumed envelope accounts for
// exactly one transport reference on its payload (taken in send), so pooled
// payloads return to their owner's free list here, after every observer
// (gate, OnDeliver) ran for this delivery.
func (n *Network) putEnvelope(ev *Envelope) {
	if r, ok := ev.Payload.(wire.Recyclable); ok {
		r.Recycle()
	}
	*ev = Envelope{}
	n.envFree = append(n.envFree, ev)
}

// Register installs node as process id. Must be called before the node is
// started.
func (n *Network) Register(id proc.ID, node proc.Node) {
	if n.nodes[id] != nil {
		panic(fmt.Sprintf("netsim: process %d registered twice", id))
	}
	if node == nil {
		panic("netsim: Register with nil node")
	}
	n.nodes[id] = node
}

// StartAt schedules process id's Start callback at virtual time at.
func (n *Network) StartAt(id proc.ID, at sim.Time) {
	if n.nodes[id] == nil {
		panic(fmt.Sprintf("netsim: starting unregistered process %d", id))
	}
	n.sched.AtTyped(at, n, evStart, uint64(uint32(id)), nil)
}

// StartAll starts every registered process at time 0.
func (n *Network) StartAll() {
	for id := range n.nodes {
		n.StartAt(id, 0)
	}
}

// startNow runs a process's Start callback and flushes, in arrival order,
// any messages that reached it before it started.
func (n *Network) startNow(id proc.ID) {
	if n.crashed[id] || n.started[id] {
		return
	}
	n.started[id] = true
	n.nodes[id].Start(n.envs[id])
	buf := n.preStart[id]
	n.preStart[id] = nil
	for _, ev := range buf {
		n.stats.Delivered++
		n.nodes[id].OnMessage(ev.From, ev.Payload)
		if n.OnDeliver != nil {
			n.OnDeliver(ev)
		}
		n.putEnvelope(ev)
	}
}

// CrashAt schedules process id to crash at virtual time at. Crashing is
// idempotent. Messages already in flight to other processes are still
// delivered (they left the sender before the crash).
func (n *Network) CrashAt(id proc.ID, at sim.Time) {
	n.sched.AtTyped(at, n, evCrash, uint64(uint32(id)), nil)
}

// Crash crashes process id immediately: equivalent to CrashAt(id, Now())
// except the crash state applies before the call returns (Crashed(id) holds
// afterwards), mirroring the runtime transport's synchronous Crash. Only
// call it from outside the event loop (between scheduler runs).
func (n *Network) Crash(id proc.ID) { n.crashNow(id) }

func (n *Network) crashNow(id proc.ID) {
	if n.crashed[id] {
		return
	}
	n.crashed[id] = true
	n.everCrashed[id] = true
	n.churnEpoch++
	// Disarm all of the process's timers.
	for key, ev := range n.envs[id].timers {
		n.sched.Cancel(ev)
		delete(n.envs[id].timers, key)
	}
	// Messages buffered for a start that will never happen are drops.
	for _, ev := range n.preStart[id] {
		n.stats.Dropped++
		n.putEnvelope(ev)
	}
	n.preStart[id] = nil
	if c, ok := n.nodes[id].(proc.Crashable); ok && n.started[id] {
		c.OnCrash()
	}
	if n.OnCrashHook != nil {
		n.OnCrashHook(id, n.sched.Now())
	}
}

// Crashed reports whether process id is currently crashed (down).
func (n *Network) Crashed(id proc.ID) bool { return n.crashed[id] }

// ChurnEpoch counts crash and restart events so far. Any value derived from
// the crashed set (like the winning gate's losable-message budget) stays
// valid for as long as the epoch does not change, which lets hot paths cache
// it instead of rescanning every process per event.
func (n *Network) ChurnEpoch() uint64 { return n.churnEpoch }

// EverCrashed reports whether process id has crashed at any point, even if a
// later RestartAt brought a fresh incarnation up. Correctness checkers use
// this: in the crash-stop model a crash-recovery process is faulty, so
// eventual leadership is owed only to the never-crashed set.
func (n *Network) EverCrashed(id proc.ID) bool { return n.everCrashed[id] }

// RestartAt schedules a fresh incarnation of process id at virtual time at:
// factory builds the replacement node (with empty state — this is churn in a
// crash-stop world, not crash-recovery with stable storage) and the network
// starts it immediately. Restarting a process that is not down at that time
// is a no-op. Messages that were in flight to the process across its downtime
// are delivered to the new incarnation if they arrive after at; messages that
// arrived while it was down were dropped, exactly like deliveries to any
// crashed process.
func (n *Network) RestartAt(id proc.ID, at sim.Time, factory func() proc.Node) {
	if factory == nil {
		panic("netsim: RestartAt with nil factory")
	}
	n.sched.AtTyped(at, n, evRestart, uint64(uint32(id)), factory)
}

// Restart brings a fresh incarnation of process id up immediately (the
// within-event-loop twin of RestartAt, used by chaos timelines whose actions
// fire as scheduler events). It reports whether a restart happened — false
// when the process was not down.
func (n *Network) Restart(id proc.ID, factory func() proc.Node) bool {
	if factory == nil {
		panic("netsim: Restart with nil factory")
	}
	if !n.crashed[id] {
		return false
	}
	n.restartNow(id, factory)
	return true
}

func (n *Network) restartNow(id proc.ID, factory func() proc.Node) {
	if !n.crashed[id] {
		return
	}
	node := factory()
	if node == nil {
		panic("netsim: restart factory returned nil node")
	}
	n.crashed[id] = false
	n.started[id] = false
	n.churnEpoch++
	n.nodes[id] = node
	n.startNow(id)
}

// Correct returns the ids of processes that have not crashed (so far).
func (n *Network) Correct() []proc.ID {
	var out []proc.ID
	for id, c := range n.crashed {
		if !c {
			out = append(out, id)
		}
	}
	return out
}

// Node returns the node registered as process id.
func (n *Network) Node(id proc.ID) proc.Node { return n.nodes[id] }

// OnSimEvent implements sim.Handler: it demultiplexes the network's typed
// scheduler events (message arrival, timer expiry, process start, crash).
func (n *Network) OnSimEvent(kind uint8, a uint64, p any) {
	switch kind {
	case evDeliver:
		n.arrive(p.(*Envelope))
	case evTimer:
		id, key := unpackTimer(a)
		e := n.envs[id]
		delete(e.timers, key)
		if n.crashed[id] {
			return
		}
		n.nodes[id].OnTimer(key)
	case evStart:
		n.startNow(proc.ID(uint32(a)))
	case evCrash:
		n.crashNow(proc.ID(uint32(a)))
	case evRestart:
		n.restartNow(proc.ID(uint32(a)), p.(func() proc.Node))
	case evMcast:
		n.mcastStep(p.(*mcast))
	default:
		panic(fmt.Sprintf("netsim: unknown event kind %d", kind))
	}
}

// send is called by a process env.
func (n *Network) send(from, to proc.ID, msg any) {
	if n.crashed[from] {
		return // a crashed process executes nothing
	}
	if to < 0 || to >= len(n.nodes) {
		panic(fmt.Sprintf("netsim: send to invalid process %d", to))
	}
	n.nextSeq++
	n.stats.Sent++
	if wm, ok := msg.(wire.Message); ok {
		// A kind >= wire.KindCount panics here: better a loud index error
		// than per-kind tables that silently stop summing to the totals.
		k := wm.Kind()
		sz := uint64(wm.Size())
		n.stats.Bytes += sz
		n.stats.ByKind[k]++
		n.stats.BytesKind[k] += sz
	}
	if n.fault != nil && !n.fault.Admit(from, to) {
		// Refused by the chaos overlay: counted as sent and dropped (like
		// tcpnet policy drops), no envelope allocated, no transport retain,
		// and — preserving determinism for runs without the overlay — no
		// policy delay draw consumed.
		n.stats.Dropped++
		return
	}
	ev := n.getEnvelope()
	ev.Seq = n.nextSeq
	ev.From = from
	ev.To = to
	ev.Payload = msg
	ev.SentAt = n.sched.Now()
	// One transport reference per send; released in putEnvelope when this
	// copy's delivery (or drop) completes. See wire's pooling contract.
	if r, ok := msg.(wire.Recyclable); ok {
		r.Retain()
	}
	d := n.policy.Delay(ev, n.rand)
	if n.fault != nil {
		d += n.fault.Delay(from, to)
	}
	if d < 0 {
		d = 0
	}
	n.sched.AfterTyped(d, n, evDeliver, 0, ev)
}

// mcLeg is one pending destination of an in-flight multicast: where it goes,
// when it arrives, and the identities its unicast twin would have carried —
// the per-destination message Seq and the scheduler tie-break seq reserved
// at send time.
type mcLeg struct {
	at       sim.Time
	seq      uint64 // Envelope.Seq of this leg
	schedSeq uint64 // reserved scheduler seq (ordering vs unrelated events)
	to       proc.ID
}

// mcast is the single pooled envelope of one multicast: the shared payload
// plus all pending legs, sorted by delivery order. One scheduler event walks
// the legs, rescheduling itself to the next deadline after each delivery,
// so an n-destination broadcast keeps one event and one carrier in flight
// instead of n envelopes and n heap entries.
type mcast struct {
	from    proc.ID
	payload any
	sentAt  sim.Time
	legs    []mcLeg
	idx     int // next leg to deliver
}

// getMcast pops a recycled carrier.
func (n *Network) getMcast() *mcast {
	if k := len(n.mcFree); k > 0 {
		mc := n.mcFree[k-1]
		n.mcFree = n.mcFree[:k-1]
		return mc
	}
	return &mcast{}
}

// putMcast returns a fully-walked carrier to the pool. Payload references
// are per-leg (held by the materialized delivery envelopes), so the carrier
// itself releases nothing.
func (n *Network) putMcast(mc *mcast) {
	mc.payload = nil
	mc.legs = mc.legs[:0]
	mc.idx = 0
	n.mcFree = append(n.mcFree, mc)
}

// multicast is Send fanned over a destination set, behaviourally identical
// to one send per member in ascending id order. Equivalence is exact, not
// approximate: message seqs, stats, payload retains and per-link delay draws
// happen per destination in the same order as the unicast loop, and the
// carrier replays each leg under the scheduler seq its unicast twin would
// have occupied (the block reserved by ReserveSeqs is contiguous because a
// node's send loop admits no interleaving), so the global delivery order —
// including ties — is bit-for-bit unchanged. Only the cost moves: one
// pooled carrier and one pending scheduler event replace n of each.
func (n *Network) multicast(from proc.ID, dests *bitset.Set, msg any) {
	if n.crashed[from] {
		return // a crashed process executes nothing
	}
	if dests.Len() != len(n.nodes) {
		panic(fmt.Sprintf("netsim: multicast destination universe %d, want %d", dests.Len(), len(n.nodes)))
	}
	k := dests.Count()
	if k == 0 {
		return
	}
	now := n.sched.Now()
	recyclable, _ := msg.(wire.Recyclable)
	wm, isWire := msg.(wire.Message)
	var kind wire.Kind
	var sz uint64
	if isWire {
		kind = wm.Kind()
		sz = uint64(wm.Size())
	}
	mc := n.getMcast()
	mc.from, mc.payload, mc.sentAt = from, msg, now
	if cap(mc.legs) < k {
		mc.legs = make([]mcLeg, 0, k)
	}
	scratch := &n.policyScratch
	scratch.From, scratch.Payload, scratch.SentAt, scratch.Released = from, msg, now, false
	legs := mc.legs[:0]
	for to := 0; to < len(n.nodes); to++ {
		if !dests.Contains(to) {
			continue
		}
		n.nextSeq++
		n.stats.Sent++
		if isWire {
			n.stats.Bytes += sz
			n.stats.ByKind[kind]++
			n.stats.BytesKind[kind] += sz
		}
		if n.fault != nil && !n.fault.Admit(from, to) {
			// Chaos overlay refusal: this leg is counted sent+dropped and
			// never materializes — no retain, no delay draw, no leg.
			n.stats.Dropped++
			continue
		}
		if recyclable != nil {
			recyclable.Retain() // one transport reference per destination bit
		}
		scratch.Seq, scratch.To = n.nextSeq, to
		d := n.policy.Delay(scratch, n.rand)
		if n.fault != nil {
			d += n.fault.Delay(from, to)
		}
		if d < 0 {
			d = 0
		}
		legs = append(legs, mcLeg{at: now.Add(d), seq: n.nextSeq, to: to})
	}
	scratch.Payload = nil
	if len(legs) == 0 {
		// Every leg refused: nothing in flight, recycle the carrier.
		mc.legs = legs
		n.putMcast(mc)
		return
	}
	base := n.sched.ReserveSeqs(len(legs))
	for i := range legs {
		legs[i].schedSeq = base + uint64(i)
	}
	slices.SortFunc(legs, func(a, b mcLeg) int {
		if a.at != b.at {
			if a.at < b.at {
				return -1
			}
			return 1
		}
		if a.schedSeq < b.schedSeq {
			return -1
		}
		return 1
	})
	mc.legs = legs
	n.sched.AtTypedSeq(legs[0].at, legs[0].schedSeq, n, evMcast, 0, mc)
}

// mcastStep delivers the carrier's next leg and reschedules it for the one
// after. The delivery itself materializes a pooled unicast envelope so that
// gates, observers and the pre-start buffer see exactly the envelopes they
// always did — but the envelope now lives only from deadline to consumption
// instead of from send to delivery.
func (n *Network) mcastStep(mc *mcast) {
	leg := mc.legs[mc.idx]
	mc.idx++
	if mc.idx < len(mc.legs) {
		next := mc.legs[mc.idx]
		n.sched.AtTypedSeq(next.at, next.schedSeq, n, evMcast, 0, mc)
	}
	ev := n.getEnvelope()
	ev.Seq, ev.From, ev.To = leg.seq, mc.from, leg.to
	ev.Payload, ev.SentAt = mc.payload, mc.sentAt
	if mc.idx == len(mc.legs) {
		n.putMcast(mc)
	}
	n.arrive(ev)
}

// arrive runs when an envelope's transfer delay has elapsed.
func (n *Network) arrive(ev *Envelope) {
	if n.gate != nil && !n.gate.OnArrival(ev, n.sched.Now()) {
		return // gate holds it; it will come back via OnDelivered
	}
	n.deliverChain(ev)
}

// deliverChain delivers ev and then any envelopes the gate releases,
// breadth-first, all at the current instant. Consumed envelopes (delivered
// or dropped, as opposed to buffered pre-start) are recycled.
func (n *Network) deliverChain(first *Envelope) {
	if n.gate == nil {
		if n.deliverOne(first) {
			n.putEnvelope(first)
		}
		return
	}
	// deliverChain never runs nested (node callbacks only schedule future
	// events), so the queue buffer is safely reused across calls.
	q := append(n.chainBuf[:0], first)
	for head := 0; head < len(q); head++ {
		ev := q[head]
		consumed := n.deliverOne(ev)
		released := n.gate.OnDelivered(ev, n.sched.Now())
		for _, rel := range released {
			rel.Released = true
		}
		q = append(q, released...)
		if consumed {
			n.putEnvelope(ev)
		}
	}
	n.chainBuf = q[:0]
}

// deliverOne hands ev to its receiver. It reports whether the envelope was
// consumed — delivered to a live started process, or dropped at a crashed
// one — as opposed to buffered for a not-yet-started receiver, in which case
// the pre-start buffer owns it until the start flush.
func (n *Network) deliverOne(ev *Envelope) bool {
	if n.crashed[ev.To] {
		n.stats.Dropped++
		return true
	}
	if !n.started[ev.To] {
		// The model starts all processes "at the beginning"; a message
		// arriving before the (staggered) start is buffered in arrival
		// order and flushed when the process starts. This keeps
		// reliable-link semantics with staggered starts.
		n.preStart[ev.To] = append(n.preStart[ev.To], ev)
		return false
	}
	n.stats.Delivered++
	n.nodes[ev.To].OnMessage(ev.From, ev.Payload)
	if n.OnDeliver != nil {
		n.OnDeliver(ev)
	}
	return true
}

// env implements proc.Env for one simulated process.
type env struct {
	net    *Network
	id     proc.ID
	timers map[proc.TimerKey]sim.EventID
}

func (e *env) ID() proc.ID { return e.id }
func (e *env) N() int      { return e.net.N() }

func (e *env) Now() time.Duration { return time.Duration(e.net.sched.Now()) }

func (e *env) Send(to proc.ID, msg any) { e.net.send(e.id, to, msg) }

// Multicast implements proc.Env. Single-destination sets take the plain
// unicast path (same behaviour, less machinery).
func (e *env) Multicast(dests *bitset.Set, msg any) {
	if dests.Count() == 1 {
		for to := 0; to < dests.Len(); to++ {
			if dests.Contains(to) {
				e.net.send(e.id, to, msg)
				return
			}
		}
	}
	e.net.multicast(e.id, dests, msg)
}

func (e *env) SetTimer(key proc.TimerKey, d time.Duration) {
	if old, ok := e.timers[key]; ok {
		e.net.sched.Cancel(old)
	}
	if d < 0 {
		d = 0
	}
	e.timers[key] = e.net.sched.AfterTyped(d, e.net, evTimer, packTimer(e.id, key), nil)
}

func (e *env) StopTimer(key proc.TimerKey) {
	if old, ok := e.timers[key]; ok {
		e.net.sched.Cancel(old)
		delete(e.timers, key)
	}
}

var (
	_ proc.Env    = (*env)(nil)
	_ sim.Handler = (*Network)(nil)
)
