package netsim

import (
	"testing"
	"time"

	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/wire"
)

// echoNode records everything it receives and can send on request.
type echoNode struct {
	env      proc.Env
	received []recv
	timers   []proc.TimerKey
	crashed  bool
}

type recv struct {
	from proc.ID
	msg  any
	at   time.Duration
}

func (e *echoNode) Start(env proc.Env) { e.env = env }
func (e *echoNode) OnMessage(from proc.ID, msg any) {
	e.received = append(e.received, recv{from, msg, e.env.Now()})
}
func (e *echoNode) OnTimer(key proc.TimerKey) { e.timers = append(e.timers, key) }
func (e *echoNode) OnCrash()                  { e.crashed = true }

func constDelay(d time.Duration) DelayPolicy {
	return DelayFunc(func(*Envelope, *sim.Rand) time.Duration { return d })
}

func newTestNet(t *testing.T, n int, policy DelayPolicy, gate Gate) (*Network, []*echoNode, *sim.Scheduler) {
	t.Helper()
	sched := sim.NewScheduler()
	net, err := New(sched, Config{N: n, Seed: 1, Policy: policy, Gate: gate})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*echoNode, n)
	for i := range nodes {
		nodes[i] = &echoNode{}
		net.Register(i, nodes[i])
	}
	net.StartAll()
	return net, nodes, sched
}

func TestDeliveryWithDelay(t *testing.T) {
	net, nodes, sched := newTestNet(t, 2, constDelay(5*time.Millisecond), nil)
	sched.RunFor(time.Millisecond) // let Start run
	nodes[0].env.Send(1, &wire.Heartbeat{Seq: 1})
	sched.RunFor(time.Second)
	if len(nodes[1].received) != 1 {
		t.Fatalf("received %d messages, want 1", len(nodes[1].received))
	}
	r := nodes[1].received[0]
	if r.from != 0 {
		t.Errorf("from = %d", r.from)
	}
	if r.at != time.Millisecond+5*time.Millisecond {
		t.Errorf("delivered at %v, want 6ms", r.at)
	}
	st := net.Stats()
	if st.Sent != 1 || st.Delivered != 1 || st.Dropped != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.ByKind[wire.KindHeartbeat] != 1 {
		t.Errorf("ByKind = %v", st.ByKind)
	}
	if st.Bytes == 0 {
		t.Error("Bytes not accounted")
	}
}

func TestSendToSelf(t *testing.T) {
	_, nodes, sched := newTestNet(t, 1, constDelay(0), nil)
	sched.RunFor(time.Millisecond)
	nodes[0].env.Send(0, &wire.Heartbeat{Seq: 2})
	sched.RunFor(time.Second)
	if len(nodes[0].received) != 1 {
		t.Fatalf("self-delivery failed: %d messages", len(nodes[0].received))
	}
}

func TestCrashStopsDelivery(t *testing.T) {
	net, nodes, sched := newTestNet(t, 2, constDelay(10*time.Millisecond), nil)
	net.CrashAt(1, sim.Time(5*time.Millisecond))
	sched.RunFor(time.Millisecond)
	nodes[0].env.Send(1, &wire.Heartbeat{Seq: 1}) // in flight when 1 crashes
	sched.RunFor(time.Second)
	if len(nodes[1].received) != 0 {
		t.Fatalf("crashed process received %d messages", len(nodes[1].received))
	}
	st := net.Stats()
	if st.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", st.Dropped)
	}
	if !net.Crashed(1) || net.Crashed(0) {
		t.Error("Crashed flags wrong")
	}
	if got := net.Correct(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Correct = %v", got)
	}
	if !nodes[1].crashed {
		t.Error("OnCrash not called")
	}
}

func TestCrashedProcessSendsNothing(t *testing.T) {
	net, nodes, sched := newTestNet(t, 2, constDelay(0), nil)
	sched.RunFor(time.Millisecond)
	net.CrashAt(0, sim.Time(2*time.Millisecond))
	sched.RunFor(5 * time.Millisecond)
	nodes[0].env.Send(1, &wire.Heartbeat{Seq: 1}) // from a crashed process
	sched.RunFor(time.Second)
	if len(nodes[1].received) != 0 {
		t.Fatal("message from crashed process was delivered")
	}
	if net.Stats().Sent != 0 {
		t.Error("send from crashed process was counted")
	}
}

func TestCrashCancelsTimers(t *testing.T) {
	net, nodes, sched := newTestNet(t, 1, constDelay(0), nil)
	sched.RunFor(time.Millisecond)
	nodes[0].env.SetTimer(1, 10*time.Millisecond)
	net.CrashAt(0, sim.Time(5*time.Millisecond))
	sched.RunFor(time.Second)
	if len(nodes[0].timers) != 0 {
		t.Fatalf("timer fired on crashed process: %v", nodes[0].timers)
	}
}

func TestTimerRearmReplaces(t *testing.T) {
	_, nodes, sched := newTestNet(t, 1, constDelay(0), nil)
	sched.RunFor(time.Millisecond)
	nodes[0].env.SetTimer(7, 10*time.Millisecond)
	nodes[0].env.SetTimer(7, 50*time.Millisecond) // replaces
	sched.RunFor(20 * time.Millisecond)
	if len(nodes[0].timers) != 0 {
		t.Fatal("replaced timer fired early")
	}
	sched.RunFor(time.Second)
	if len(nodes[0].timers) != 1 || nodes[0].timers[0] != 7 {
		t.Fatalf("timers = %v", nodes[0].timers)
	}
}

func TestStopTimer(t *testing.T) {
	_, nodes, sched := newTestNet(t, 1, constDelay(0), nil)
	sched.RunFor(time.Millisecond)
	nodes[0].env.SetTimer(3, 10*time.Millisecond)
	nodes[0].env.StopTimer(3)
	sched.RunFor(time.Second)
	if len(nodes[0].timers) != 0 {
		t.Fatal("stopped timer fired")
	}
}

func TestZeroTimerFiresImmediately(t *testing.T) {
	_, nodes, sched := newTestNet(t, 1, constDelay(0), nil)
	sched.RunFor(time.Millisecond)
	nodes[0].env.SetTimer(1, 0)
	sched.RunFor(time.Millisecond)
	if len(nodes[0].timers) != 1 {
		t.Fatal("zero timer did not fire")
	}
}

func TestMultipleTimerKeys(t *testing.T) {
	_, nodes, sched := newTestNet(t, 1, constDelay(0), nil)
	sched.RunFor(time.Millisecond)
	nodes[0].env.SetTimer(1, 5*time.Millisecond)
	nodes[0].env.SetTimer(2, 3*time.Millisecond)
	sched.RunFor(time.Second)
	if len(nodes[0].timers) != 2 || nodes[0].timers[0] != 2 || nodes[0].timers[1] != 1 {
		t.Fatalf("timers = %v", nodes[0].timers)
	}
}

// holdGate holds the first arriving message until the second is delivered.
type holdGate struct {
	held  []*Envelope
	count int
}

func (g *holdGate) OnArrival(ev *Envelope, _ sim.Time) bool {
	g.count++
	if g.count == 1 && !ev.Released {
		g.held = append(g.held, ev)
		return false
	}
	return true
}

func (g *holdGate) OnDelivered(_ *Envelope, _ sim.Time) []*Envelope {
	out := g.held
	g.held = nil
	return out
}

func TestGateReordersDeliveries(t *testing.T) {
	gate := &holdGate{}
	_, nodes, sched := newTestNet(t, 3, constDelay(time.Millisecond), gate)
	sched.RunFor(time.Millisecond)
	nodes[0].env.Send(2, &wire.Heartbeat{Seq: 100}) // will be held
	nodes[1].env.Send(2, &wire.Heartbeat{Seq: 200}) // delivered first, releases held
	sched.RunFor(time.Second)
	got := nodes[2].received
	if len(got) != 2 {
		t.Fatalf("received %d, want 2", len(got))
	}
	if got[0].msg.(*wire.Heartbeat).Seq != 200 || got[1].msg.(*wire.Heartbeat).Seq != 100 {
		t.Fatalf("gate did not reorder: %v then %v", got[0].msg, got[1].msg)
	}
	// Both released at the same instant.
	if got[0].at != got[1].at {
		t.Errorf("release instants differ: %v vs %v", got[0].at, got[1].at)
	}
}

func TestStaggeredStartBuffersMessages(t *testing.T) {
	sched := sim.NewScheduler()
	net, err := New(sched, Config{N: 2, Seed: 1, Policy: constDelay(0)})
	if err != nil {
		t.Fatal(err)
	}
	a, b := &echoNode{}, &echoNode{}
	net.Register(0, a)
	net.Register(1, b)
	net.StartAt(0, 0)
	net.StartAt(1, sim.Time(50*time.Millisecond)) // late starter
	sched.RunFor(time.Millisecond)
	a.env.Send(1, &wire.Heartbeat{Seq: 9})
	sched.RunFor(time.Second)
	if len(b.received) != 1 {
		t.Fatalf("late starter received %d messages, want 1 (buffered)", len(b.received))
	}
	if b.received[0].at < 50*time.Millisecond {
		t.Fatalf("delivered before start: %v", b.received[0].at)
	}
}

func TestConfigValidation(t *testing.T) {
	sched := sim.NewScheduler()
	if _, err := New(sched, Config{N: 0, Policy: constDelay(0)}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := New(sched, Config{N: 3}); err == nil {
		t.Error("nil policy accepted")
	}
}

func TestDoubleRegisterPanics(t *testing.T) {
	sched := sim.NewScheduler()
	net, err := New(sched, Config{N: 1, Seed: 1, Policy: constDelay(0)})
	if err != nil {
		t.Fatal(err)
	}
	net.Register(0, &echoNode{})
	defer func() {
		if recover() == nil {
			t.Fatal("double Register did not panic")
		}
	}()
	net.Register(0, &echoNode{})
}

func TestDeterministicDeliveryOrder(t *testing.T) {
	run := func() []recv {
		sched := sim.NewScheduler()
		net, err := New(sched, Config{N: 4, Seed: 42, Policy: DelayFunc(
			func(ev *Envelope, r *sim.Rand) time.Duration {
				return r.Duration(time.Millisecond, 20*time.Millisecond)
			})})
		if err != nil {
			t.Fatal(err)
		}
		nodes := make([]*echoNode, 4)
		for i := range nodes {
			nodes[i] = &echoNode{}
			net.Register(i, nodes[i])
		}
		net.StartAll()
		sched.RunFor(time.Millisecond)
		for i := 1; i < 4; i++ {
			nodes[i].env.Send(0, &wire.Heartbeat{Seq: int64(i)})
			nodes[i].env.Send(0, &wire.Heartbeat{Seq: int64(10 + i)})
		}
		sched.RunFor(time.Second)
		return nodes[0].received
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 6 {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].from != b[i].from || a[i].at != b[i].at ||
			a[i].msg.(*wire.Heartbeat).Seq != b[i].msg.(*wire.Heartbeat).Seq {
			t.Fatalf("runs diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestOnDeliverHook(t *testing.T) {
	net, nodes, sched := newTestNet(t, 2, constDelay(0), nil)
	// Envelopes are recycled after delivery; observers copy, not retain.
	var seen []Envelope
	net.OnDeliver = func(ev *Envelope) { seen = append(seen, *ev) }
	sched.RunFor(time.Millisecond)
	nodes[0].env.Send(1, &wire.Heartbeat{Seq: 1})
	sched.RunFor(time.Second)
	if len(seen) != 1 || seen[0].From != 0 || seen[0].To != 1 {
		t.Fatalf("hook saw %v", seen)
	}
}

func TestPreStartBufferOrderAndCounters(t *testing.T) {
	// Messages arriving before a late starter must be flushed at its start
	// time, in arrival order, with each counted Delivered exactly once.
	sched := sim.NewScheduler()
	// Per-envelope delay: earlier sends get longer delays, so arrival
	// order (by Seq) is the reverse of send order.
	net, err := New(sched, Config{N: 2, Seed: 1, Policy: DelayFunc(
		func(ev *Envelope, _ *sim.Rand) time.Duration {
			return 10*time.Millisecond - time.Duration(ev.Seq)*time.Millisecond
		})})
	if err != nil {
		t.Fatal(err)
	}
	a, b := &echoNode{}, &echoNode{}
	net.Register(0, a)
	net.Register(1, b)
	net.StartAt(0, 0)
	net.StartAt(1, sim.Time(50*time.Millisecond)) // after all arrivals
	sched.RunFor(time.Millisecond)
	for seq := int64(1); seq <= 3; seq++ {
		a.env.Send(1, &wire.Heartbeat{Seq: seq})
	}
	sched.RunFor(time.Second)
	if len(b.received) != 3 {
		t.Fatalf("received %d messages, want 3", len(b.received))
	}
	// Arrival order was seq 3 (delay 7ms), 2 (8ms), 1 (9ms).
	wantOrder := []int64{3, 2, 1}
	for i, want := range wantOrder {
		got := b.received[i].msg.(*wire.Heartbeat).Seq
		if got != want {
			t.Errorf("flush position %d: seq %d, want %d", i, got, want)
		}
		if b.received[i].at != 50*time.Millisecond {
			t.Errorf("flush position %d delivered at %v, want 50ms", i, b.received[i].at)
		}
	}
	st := net.Stats()
	if st.Sent != 3 || st.Delivered != 3 || st.Dropped != 0 {
		t.Errorf("stats = %+v, want Sent=3 Delivered=3 Dropped=0", st)
	}
}

func TestPreStartBufferDroppedOnCrash(t *testing.T) {
	// A process that crashes before it starts never receives its buffered
	// messages; they count as drops, not deliveries.
	sched := sim.NewScheduler()
	net, err := New(sched, Config{N: 2, Seed: 1, Policy: constDelay(0)})
	if err != nil {
		t.Fatal(err)
	}
	a, b := &echoNode{}, &echoNode{}
	net.Register(0, a)
	net.Register(1, b)
	net.StartAt(0, 0)
	net.StartAt(1, sim.Time(50*time.Millisecond))
	net.CrashAt(1, sim.Time(20*time.Millisecond)) // before its start
	sched.RunFor(time.Millisecond)
	a.env.Send(1, &wire.Heartbeat{Seq: 1})
	a.env.Send(1, &wire.Heartbeat{Seq: 2})
	sched.RunFor(time.Second)
	if len(b.received) != 0 {
		t.Fatalf("crashed-before-start process received %d messages", len(b.received))
	}
	st := net.Stats()
	if st.Sent != 2 || st.Delivered != 0 || st.Dropped != 2 {
		t.Errorf("stats = %+v, want Sent=2 Delivered=0 Dropped=2", st)
	}
}

func TestEnvelopePoolSteadyStateDoesNotGrow(t *testing.T) {
	// After a burst settles, subsequent traffic reuses pooled envelopes:
	// the free list stops growing once it covers the in-flight peak
	// (rounded up to the envBlock refill granularity).
	net, nodes, sched := newTestNet(t, 2, constDelay(time.Millisecond), nil)
	sched.RunFor(time.Millisecond)
	for round := 0; round < 5; round++ {
		for i := 0; i < 10; i++ {
			nodes[0].env.Send(1, &wire.Heartbeat{Seq: int64(round*10 + i)})
		}
		sched.RunFor(10 * time.Millisecond)
	}
	if got := len(net.envFree); got > envBlock {
		t.Errorf("free list grew to %d envelopes; want <= one refill block (%d)", got, envBlock)
	}
	if len(nodes[1].received) != 50 {
		t.Fatalf("received %d, want 50", len(nodes[1].received))
	}
}

func TestOnCrashHook(t *testing.T) {
	net, _, sched := newTestNet(t, 2, constDelay(0), nil)
	var crashedID proc.ID = -1
	var at sim.Time
	net.OnCrashHook = func(id proc.ID, t sim.Time) { crashedID, at = id, t }
	net.CrashAt(1, sim.Time(7*time.Millisecond))
	sched.RunFor(time.Second)
	if crashedID != 1 || at != sim.Time(7*time.Millisecond) {
		t.Fatalf("crash hook: id=%d at=%v", crashedID, at)
	}
}

// TestPooledPayloadRecycledAfterLastDelivery verifies the payload recycle
// point: a pooled message broadcast to several receivers returns to its pool
// only after the last copy is consumed, including drops at crashed receivers.
func TestPooledPayloadRecycledAfterLastDelivery(t *testing.T) {
	net, nodes, sched := newTestNet(t, 3, constDelay(time.Millisecond), nil)
	sched.RunFor(time.Millisecond)

	var pool wire.HeartbeatPool
	hb := pool.Get()
	hb.Seq = 9
	nodes[0].env.Send(1, hb)
	nodes[0].env.Send(2, hb)
	if got := pool.Get(); got == hb {
		t.Fatal("payload recycled while copies are in flight")
	}
	sched.RunFor(time.Second)
	if got := pool.Get(); got != hb {
		t.Fatal("payload not recycled after last delivery")
	}
	if len(nodes[1].received) != 1 || len(nodes[2].received) != 1 {
		t.Fatalf("deliveries = %d/%d", len(nodes[1].received), len(nodes[2].received))
	}

	// A copy dropped at a crashed receiver also releases its reference.
	hb2 := pool.Get()
	hb2.Seq = 10
	net.CrashAt(2, sched.Now())
	sched.RunFor(time.Millisecond / 2)
	nodes[0].env.Send(1, hb2)
	nodes[0].env.Send(2, hb2) // will be dropped
	sched.RunFor(time.Second)
	if got := pool.Get(); got != hb2 {
		t.Fatal("drop at crashed receiver did not release the payload")
	}
}

// TestRestartBringsFreshIncarnation covers the churn primitive: a crashed
// process restarted with a fresh node receives again, EverCrashed stays
// true, and restarting a live process is a no-op.
func TestRestartBringsFreshIncarnation(t *testing.T) {
	net, nodes, sched := newTestNet(t, 2, constDelay(time.Millisecond), nil)
	sched.RunFor(time.Millisecond)

	net.CrashAt(1, sched.Now())
	sched.RunFor(time.Millisecond)
	nodes[0].env.Send(1, &wire.Heartbeat{Seq: 1}) // dropped: receiver down
	sched.RunFor(10 * time.Millisecond)
	if got := net.Stats().Dropped; got != 1 {
		t.Fatalf("Dropped = %d, want 1", got)
	}

	fresh := &echoNode{}
	net.RestartAt(1, sched.Now(), func() proc.Node {
		nodes[1] = fresh
		return fresh
	})
	sched.RunFor(time.Millisecond)
	if net.Crashed(1) {
		t.Fatal("process still down after restart")
	}
	if !net.EverCrashed(1) {
		t.Fatal("EverCrashed forgotten by restart")
	}
	if fresh.env == nil {
		t.Fatal("fresh incarnation not started")
	}
	nodes[0].env.Send(1, &wire.Heartbeat{Seq: 2})
	sched.RunFor(10 * time.Millisecond)
	if len(fresh.received) != 1 {
		t.Fatalf("fresh incarnation received %d messages, want 1", len(fresh.received))
	}

	// Restarting a live process must be a no-op.
	net.RestartAt(1, sched.Now(), func() proc.Node {
		t.Error("factory invoked for a live process")
		return &echoNode{}
	})
	sched.RunFor(time.Millisecond)
	if net.Node(1) != fresh {
		t.Fatal("live process replaced by restart")
	}
}
