package netsim

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/wire"
)

// randomDelay draws a fresh uniform delay per call, so any divergence in
// draw ORDER between two runs shows up as diverging delivery times.
func randomDelay(lo, hi time.Duration) DelayPolicy {
	return DelayFunc(func(ev *Envelope, r *sim.Rand) time.Duration {
		return r.Duration(lo, hi)
	})
}

// trace flattens a network's delivery history via OnDeliver.
type traceEntry struct {
	seq      uint64
	from, to proc.ID
	at       sim.Time
}

// TestMulticastMatchesUnicastLoop is the equivalence contract, checked
// directly at the netsim layer: Multicast(dests, msg) must be
// indistinguishable — delivery times, global delivery order, per-message
// seqs, stats — from one Send per member in ascending id order, under the
// same seed. This is what keeps the determinism suite seed-stable across
// the multicast rewrite.
func TestMulticastMatchesUnicastLoop(t *testing.T) {
	const n = 7
	run := func(multicast bool) ([]traceEntry, Stats) {
		sched := sim.NewScheduler()
		net, err := New(sched, Config{N: n, Seed: 42, Policy: randomDelay(time.Millisecond, 20*time.Millisecond)})
		if err != nil {
			t.Fatal(err)
		}
		nodes := make([]*echoNode, n)
		for i := range nodes {
			nodes[i] = &echoNode{}
			net.Register(i, nodes[i])
		}
		var trace []traceEntry
		net.OnDeliver = func(ev *Envelope) {
			trace = append(trace, traceEntry{ev.Seq, ev.From, ev.To, sched.Now()})
		}
		net.StartAll()
		sched.RunFor(time.Millisecond)

		dests := bitset.New(n)
		dests.Fill()
		dests.Remove(0) // a Broadcast-shaped set
		for round := 0; round < 5; round++ {
			hb := &wire.Heartbeat{Seq: int64(round)}
			if multicast {
				nodes[0].env.Multicast(dests, hb)
			} else {
				for j := 0; j < n; j++ {
					if dests.Contains(j) {
						nodes[0].env.Send(j, hb)
					}
				}
			}
			// Overlap the fan-outs: delays exceed the inter-round gap.
			sched.RunFor(2 * time.Millisecond)
		}
		sched.RunFor(time.Second)
		return trace, net.Stats()
	}

	uniTrace, uniStats := run(false)
	mcTrace, mcStats := run(true)
	if uniStats != mcStats {
		t.Fatalf("stats diverge:\n unicast:   %+v\n multicast: %+v", uniStats, mcStats)
	}
	if len(uniTrace) != len(mcTrace) {
		t.Fatalf("delivery counts diverge: %d vs %d", len(uniTrace), len(mcTrace))
	}
	for i := range uniTrace {
		if uniTrace[i] != mcTrace[i] {
			t.Fatalf("delivery %d diverges:\n unicast:   %+v\n multicast: %+v",
				i, uniTrace[i], mcTrace[i])
		}
	}
}

// TestMulticastDropAndPrestart: per-destination crash drops and pre-start
// buffering behave per leg, exactly like unicast envelopes.
func TestMulticastDropAndPrestart(t *testing.T) {
	sched := sim.NewScheduler()
	net, err := New(sched, Config{N: 4, Seed: 3, Policy: constDelay(5 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*echoNode, 4)
	for i := range nodes {
		nodes[i] = &echoNode{}
		net.Register(i, nodes[i])
	}
	net.StartAt(0, 0)
	net.StartAt(1, 0)
	net.StartAt(2, 0)
	net.StartAt(3, sim.Time(20*time.Millisecond)) // starts after delivery
	net.CrashAt(2, sim.Time(2*time.Millisecond))  // down before delivery
	sched.RunFor(time.Millisecond)

	dests := bitset.New(4)
	dests.Fill()
	dests.Remove(0)
	nodes[0].env.Multicast(dests, &wire.Heartbeat{Seq: 9})
	sched.RunFor(time.Second)

	if len(nodes[1].received) != 1 {
		t.Errorf("live receiver got %d messages", len(nodes[1].received))
	}
	if len(nodes[2].received) != 0 {
		t.Errorf("crashed receiver got %d messages", len(nodes[2].received))
	}
	if len(nodes[3].received) != 1 {
		t.Errorf("late-starting receiver got %d messages (pre-start buffering broken)", len(nodes[3].received))
	}
	st := net.Stats()
	if st.Sent != 3 || st.Delivered != 2 || st.Dropped != 1 {
		t.Errorf("stats = %+v, want Sent 3 Delivered 2 Dropped 1", st)
	}
}

// TestMulticastRecyclesPayloadAtLastDelivery: the pooled payload must come
// home exactly when the final leg is consumed, not before.
func TestMulticastRecyclesPayloadAtLastDelivery(t *testing.T) {
	sched := sim.NewScheduler()
	// Distinct constant delays per destination would need a policy; use
	// the seeded random one so legs complete at different instants.
	net, err := New(sched, Config{N: 5, Seed: 8, Policy: randomDelay(time.Millisecond, 10*time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*echoNode, 5)
	for i := range nodes {
		nodes[i] = &echoNode{}
		net.Register(i, nodes[i])
	}
	net.StartAll()
	sched.RunFor(time.Millisecond)

	var pool wire.HeartbeatPool
	hb := pool.Get()
	hb.Seq = 77
	deliveries := 0
	net.OnDeliver = func(ev *Envelope) {
		deliveries++
		if deliveries < 4 {
			// Not all legs consumed: the payload must not be free.
			if got := pool.Get(); got == hb {
				t.Fatalf("payload recycled after %d of 4 deliveries", deliveries)
			}
		}
	}
	nodes[0].env.Multicast(proc.OthersSet(5, 0), hb)
	sched.RunFor(time.Second)
	if deliveries != 4 {
		t.Fatalf("deliveries = %d, want 4", deliveries)
	}
	if got := pool.Get(); got != hb {
		t.Fatal("payload not recycled after the last delivery")
	}
}

// nullNode discards everything (benchmark receiver).
type nullNode struct{ env proc.Env }

func (s *nullNode) Start(env proc.Env)     { s.env = env }
func (s *nullNode) OnMessage(proc.ID, any) {}
func (s *nullNode) OnTimer(proc.TimerKey)  {}

// BenchmarkBroadcastFanout pins the O(n)->O(1) envelope claim: each op
// builds a fresh network and performs 32 overlapping n-wide broadcasts
// (delays up to 10x the broadcast gap), so allocs/op is dominated by how
// much in-flight state a fan-out keeps — n envelopes + n scheduler slots
// per broadcast before the multicast carrier, 1 carrier + 1 slot after.
func BenchmarkBroadcastFanout(b *testing.B) {
	for _, n := range []int{13, 101} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sched := sim.NewScheduler()
				net, err := New(sched, Config{N: n, Seed: uint64(i + 1), Policy: randomDelay(time.Millisecond, 10*time.Millisecond)})
				if err != nil {
					b.Fatal(err)
				}
				nodes := make([]*nullNode, n)
				for p := range nodes {
					nodes[p] = &nullNode{}
					net.Register(p, nodes[p])
				}
				net.StartAll()
				sched.RunFor(time.Microsecond)
				var pool wire.HeartbeatPool
				for k := 0; k < 32; k++ {
					hb := pool.Get()
					hb.Seq = int64(k)
					proc.BroadcastAll(nodes[0].env, hb)
					sched.RunFor(time.Millisecond)
				}
				sched.RunFor(100 * time.Millisecond)
			}
		})
	}
}
