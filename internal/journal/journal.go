// Package journal persists the recovery-relevant slice of a process's
// protocol state — the susp_level vector, the round counters, and the
// effective (possibly self-tuned) timing knobs — so a crashed process can
// restart from where it was instead of taking the round-frontier jump with
// empty state (the "amnesia" churn model).
//
// The package defines one seam, Store, with two implementations:
//
//   - MemStore keeps the latest snapshot per process in memory. It survives
//     restarts within one cluster lifetime (the common churn case) and is
//     what star.MemJournal hands out.
//   - FileStore appends length-prefixed, CRC-protected records to a single
//     file and survives full process-tree restarts. It is corruption
//     tolerant: a torn write, truncation or bit flip invalidates only the
//     damaged suffix; every record before it stays loadable, and the
//     damage is reported (wrapped ErrCorrupt) rather than panicking.
//
// Stores are safe for concurrent use: the live transport snapshots from a
// ticker goroutine while restart timers load.
package journal

import (
	"errors"
	"sync"
	"time"
)

// ErrCorrupt marks journal damage detected by the CRC/framing validation.
// Loads that may have lost data to the damage wrap it; callers branch with
// errors.Is and fall back to a fresh start.
var ErrCorrupt = errors.New("journal: corrupt record")

// Snapshot is one process's recovery-relevant state at a point in time.
// The fields mirror what a restarted incarnation cannot reconstruct from
// its peers: the gossiped suspicion levels would eventually re-converge,
// but the round counters and tuned timing knobs would not.
type Snapshot struct {
	// Proc is the process id; Incarnation counts restarts (0 = original).
	Proc        int
	Incarnation uint64

	// SRN and RRN are the sending and receiving round counters; and
	// MaxRoundSeen the newest round observed in any message (drives
	// retention pruning after restore).
	SRN, RRN     int64
	MaxRoundSeen int64

	// TimeoutUnit and AlivePeriod are the node's effective timing values
	// at snapshot time — equal to the configured ones unless adaptive
	// tuning moved them. Zero means "not recorded, use configured".
	TimeoutUnit time.Duration
	AlivePeriod time.Duration

	// Levels is the susp_level vector (the time-free baseline stores its
	// counter vector here). Length must equal the cluster's N.
	Levels []int64
}

// CopyInto deep-copies s into dst, reusing dst's Levels capacity.
func (s *Snapshot) CopyInto(dst *Snapshot) {
	levels := dst.Levels
	*dst = *s
	if cap(levels) < len(s.Levels) {
		levels = make([]int64, len(s.Levels))
	}
	dst.Levels = levels[:len(s.Levels)]
	copy(dst.Levels, s.Levels)
}

// Store persists per-process snapshots. Implementations must be safe for
// concurrent use and must not retain the *Snapshot passed to Save (callers
// reuse one scratch snapshot across processes).
type Store interface {
	// Save records s as process s.Proc's latest snapshot.
	Save(s *Snapshot) error
	// Load returns the latest valid snapshot for proc, or nil when none
	// exists. Both return values can be meaningful at once: a non-nil
	// snapshot with a non-nil error (wrapping ErrCorrupt) means newer
	// state was lost to corruption and an older valid record is being
	// returned instead.
	Load(proc int) (*Snapshot, error)
	// Close releases the store. Saves and loads after Close fail.
	Close() error
}

// MemStore is the in-memory Store: latest snapshot per process, no
// durability beyond the store's own lifetime.
type MemStore struct {
	mu     sync.Mutex
	last   map[int]*Snapshot
	closed bool
}

// NewMem returns an empty in-memory store.
func NewMem() *MemStore { return &MemStore{last: make(map[int]*Snapshot)} }

// Save implements Store.
func (m *MemStore) Save(s *Snapshot) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("journal: store closed")
	}
	dst := m.last[s.Proc]
	if dst == nil {
		dst = &Snapshot{}
		m.last[s.Proc] = dst
	}
	s.CopyInto(dst)
	return nil
}

// Load implements Store. A memory journal cannot be corrupted, so the error
// is always nil; a missing process yields (nil, nil).
func (m *MemStore) Load(proc int) (*Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, errors.New("journal: store closed")
	}
	s := m.last[proc]
	if s == nil {
		return nil, nil
	}
	out := &Snapshot{}
	s.CopyInto(out)
	return out, nil
}

// Close implements Store.
func (m *MemStore) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

var _ Store = (*MemStore)(nil)
