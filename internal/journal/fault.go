package journal

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"syscall"
)

// FaultMode selects which I/O failure a FaultStore injects. The modes mirror
// what a real disk does to a journal: EIO (a failing device), ENOSPC (a full
// one), a short write (torn append), and a bit flip that the CRC layer
// detects at load time. FaultOff restores normal operation.
type FaultMode uint8

const (
	FaultOff FaultMode = iota
	// FaultEIO fails every Save with an error wrapping syscall.EIO.
	FaultEIO
	// FaultENOSPC fails every Save with an error wrapping syscall.ENOSPC.
	FaultENOSPC
	// FaultShortWrite fails every Save with an error wrapping
	// io.ErrShortWrite (a torn append: nothing durable was recorded).
	FaultShortWrite
	// FaultBitflip corrupts loads: Load reports the stored record as
	// CRC-damaged (an error wrapping ErrCorrupt, no snapshot), which is
	// exactly what FileStore surfaces after an on-disk bit flip. Saves
	// succeed — the flip happens at rest, not in flight.
	FaultBitflip
)

var faultNames = map[FaultMode]string{
	FaultOff:        "off",
	FaultEIO:        "eio",
	FaultENOSPC:     "enospc",
	FaultShortWrite: "shortwrite",
	FaultBitflip:    "bitflip",
}

// String renders the mode ("eio", "enospc", "shortwrite", "bitflip", "off").
func (m FaultMode) String() string {
	if s, ok := faultNames[m]; ok {
		return s
	}
	return fmt.Sprintf("FaultMode(%d)", uint8(m))
}

// ParseFaultMode is String's inverse.
func ParseFaultMode(s string) (FaultMode, error) {
	for m, name := range faultNames {
		if name == s {
			return m, nil
		}
	}
	return FaultOff, fmt.Errorf("journal: unknown fault mode %q", s)
}

// FaultAll applies a fault mode to every process (SetFault's proc wildcard).
const FaultAll = -1

// FaultStore wraps a Store with switchable I/O fault injection, per process
// or store-wide. It exists so the degradation ladder — save errors counted
// and retried next sweep; corrupt loads falling back to the fresh-start +
// frontier-jump path — can be exercised deterministically, without a failing
// disk. The zero fault set is a transparent passthrough.
type FaultStore struct {
	inner Store

	mu    sync.Mutex
	all   FaultMode
	modes map[int]FaultMode

	injectedSaves atomic.Uint64
	injectedLoads atomic.Uint64
}

// NewFaultStore wraps inner; no faults are active until SetFault.
func NewFaultStore(inner Store) *FaultStore {
	if inner == nil {
		panic("journal: NewFaultStore with nil inner store")
	}
	return &FaultStore{inner: inner, modes: make(map[int]FaultMode)}
}

// SetFault sets the active fault mode for proc (FaultAll for every process).
// A per-process mode overrides the store-wide one; FaultOff clears.
func (f *FaultStore) SetFault(proc int, m FaultMode) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if proc == FaultAll {
		f.all = m
		if m == FaultOff {
			clear(f.modes)
		}
		return
	}
	if m == FaultOff {
		delete(f.modes, proc)
	} else {
		f.modes[proc] = m
	}
}

// Injected returns how many Save and Load calls failed by injection so far.
func (f *FaultStore) Injected() (saves, loads uint64) {
	return f.injectedSaves.Load(), f.injectedLoads.Load()
}

func (f *FaultStore) modeFor(proc int) FaultMode {
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.modes[proc]; ok {
		return m
	}
	return f.all
}

// Save implements Store, failing with the injected error when a save-side
// fault is active for s.Proc.
func (f *FaultStore) Save(s *Snapshot) error {
	switch f.modeFor(s.Proc) {
	case FaultEIO:
		f.injectedSaves.Add(1)
		return fmt.Errorf("journal: injected save fault for process %d: %w", s.Proc, syscall.EIO)
	case FaultENOSPC:
		f.injectedSaves.Add(1)
		return fmt.Errorf("journal: injected save fault for process %d: %w", s.Proc, syscall.ENOSPC)
	case FaultShortWrite:
		f.injectedSaves.Add(1)
		return fmt.Errorf("journal: injected save fault for process %d: %w", s.Proc, io.ErrShortWrite)
	}
	return f.inner.Save(s)
}

// Load implements Store. Under FaultBitflip the stored record reads as
// CRC-damaged: no snapshot, an error wrapping ErrCorrupt — the same surface
// FileStore presents after real on-disk damage (whose byte-level cases its
// own tests cover; the wrapper emulates the detected outcome at the seam).
func (f *FaultStore) Load(proc int) (*Snapshot, error) {
	if f.modeFor(proc) == FaultBitflip {
		f.injectedLoads.Add(1)
		return nil, fmt.Errorf("journal: injected bit flip for process %d: %w", proc, ErrCorrupt)
	}
	return f.inner.Load(proc)
}

// Close implements Store, forwarding to the wrapped store.
func (f *FaultStore) Close() error { return f.inner.Close() }

// IsInjected reports whether err carries one of the injected fault causes
// (EIO, ENOSPC, short write, or the bitflip's ErrCorrupt).
func IsInjected(err error) bool {
	return errors.Is(err, syscall.EIO) || errors.Is(err, syscall.ENOSPC) ||
		errors.Is(err, io.ErrShortWrite) || errors.Is(err, ErrCorrupt)
}

var _ Store = (*FaultStore)(nil)
