package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// File-store record framing. Every record is
//
//	uint32  payload length (little endian)
//	uint32  CRC32-IEEE of the payload (little endian)
//	[]byte  payload
//
// and the payload is a fixed little-endian layout:
//
//	uint32  proc
//	uint32  len(Levels)
//	uint64  incarnation
//	int64   SRN
//	int64   RRN
//	int64   MaxRoundSeen
//	int64   TimeoutUnit (ns)
//	int64   AlivePeriod (ns)
//	int64   Levels[...]
//
// Append-only with last-record-wins per process: a snapshot cadence of
// ~100ms writes tens of bytes per process per tick, and the scan at open
// replays the whole history in one pass. Any framing or CRC violation
// invalidates the record where it occurs and everything after it — a torn
// tail cannot make earlier records unreadable — and the file is truncated
// back to the last valid boundary so subsequent appends are clean.
const (
	fileHeaderSize   = 8       // length + CRC
	filePayloadFixed = 56      // payload bytes before the levels array
	fileMaxPayload   = 1 << 20 // framing sanity bound (~128k processes)
)

type fileEntry struct {
	snap Snapshot
	// fresh marks records written through this handle (after the open
	// scan). A fresh record postdates any damage found at open, so loads
	// of it are clean even when the scan reported corruption.
	fresh bool
}

// FileStore is the durable Store: one append-only file of CRC-protected
// records, last record per process wins.
type FileStore struct {
	mu      sync.Mutex
	f       *os.File
	entries map[int]*fileEntry
	scanErr error // non-nil if the open scan found damage (wraps ErrCorrupt)
	buf     []byte
	closed  bool
}

// OpenFile opens (creating if absent) the journal at path and replays its
// records. Corruption — torn writes, truncation, bit flips — is detected by
// the framing and CRC checks: the valid prefix is loaded, the damaged
// suffix is discarded (the file is truncated back to the last valid record
// boundary), and the damage is remembered so Loads that may have lost newer
// state surface an error wrapping ErrCorrupt. OpenFile itself only fails on
// I/O errors; a corrupt journal is a degraded open, not a failed one.
func OpenFile(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	s := &FileStore{f: f, entries: make(map[int]*fileEntry)}
	if err := s.scan(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// scan replays the file, loading the last valid record per process and
// truncating away any damaged suffix. Only I/O failures are returned;
// corruption is recorded in s.scanErr.
func (s *FileStore) scan() error {
	data, err := io.ReadAll(s.f)
	if err != nil {
		return fmt.Errorf("journal: read: %w", err)
	}
	off := 0
	for {
		rest := data[off:]
		if len(rest) == 0 {
			break // clean end of file
		}
		if len(rest) < fileHeaderSize {
			s.scanErr = fmt.Errorf("%w: torn header at offset %d", ErrCorrupt, off)
			break
		}
		plen := binary.LittleEndian.Uint32(rest[0:4])
		crc := binary.LittleEndian.Uint32(rest[4:8])
		if plen < filePayloadFixed || plen > fileMaxPayload || (plen-filePayloadFixed)%8 != 0 {
			s.scanErr = fmt.Errorf("%w: bad length %d at offset %d", ErrCorrupt, plen, off)
			break
		}
		if len(rest) < fileHeaderSize+int(plen) {
			s.scanErr = fmt.Errorf("%w: torn payload at offset %d", ErrCorrupt, off)
			break
		}
		payload := rest[fileHeaderSize : fileHeaderSize+int(plen)]
		if crc32.ChecksumIEEE(payload) != crc {
			s.scanErr = fmt.Errorf("%w: CRC mismatch at offset %d", ErrCorrupt, off)
			break
		}
		var snap Snapshot
		if err := decodePayload(payload, &snap); err != nil {
			s.scanErr = fmt.Errorf("%w: %v at offset %d", ErrCorrupt, err, off)
			break
		}
		e := s.entries[snap.Proc]
		if e == nil {
			e = &fileEntry{}
			s.entries[snap.Proc] = e
		}
		snap.CopyInto(&e.snap)
		off += fileHeaderSize + int(plen)
	}
	if off != len(data) {
		// Drop the damaged suffix so appends restart on a valid boundary.
		if err := s.f.Truncate(int64(off)); err != nil {
			return fmt.Errorf("journal: truncate after damage: %w", err)
		}
	}
	if _, err := s.f.Seek(int64(off), io.SeekStart); err != nil {
		return fmt.Errorf("journal: seek: %w", err)
	}
	return nil
}

func decodePayload(p []byte, out *Snapshot) error {
	proc := binary.LittleEndian.Uint32(p[0:4])
	nLevels := binary.LittleEndian.Uint32(p[4:8])
	if int(filePayloadFixed+8*nLevels) != len(p) {
		return fmt.Errorf("level count %d does not match payload", nLevels)
	}
	out.Proc = int(proc)
	out.Incarnation = binary.LittleEndian.Uint64(p[8:16])
	out.SRN = int64(binary.LittleEndian.Uint64(p[16:24]))
	out.RRN = int64(binary.LittleEndian.Uint64(p[24:32]))
	out.MaxRoundSeen = int64(binary.LittleEndian.Uint64(p[32:40]))
	out.TimeoutUnit = time.Duration(binary.LittleEndian.Uint64(p[40:48]))
	out.AlivePeriod = time.Duration(binary.LittleEndian.Uint64(p[48:56]))
	out.Levels = make([]int64, nLevels)
	for i := range out.Levels {
		out.Levels[i] = int64(binary.LittleEndian.Uint64(p[filePayloadFixed+8*i:]))
	}
	return nil
}

// Save implements Store: encode, append, remember as the process's latest.
func (s *FileStore) Save(snap *Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("journal: store closed")
	}
	plen := filePayloadFixed + 8*len(snap.Levels)
	need := fileHeaderSize + plen
	if cap(s.buf) < need {
		s.buf = make([]byte, need)
	}
	b := s.buf[:need]
	payload := b[fileHeaderSize:]
	binary.LittleEndian.PutUint32(payload[0:4], uint32(snap.Proc))
	binary.LittleEndian.PutUint32(payload[4:8], uint32(len(snap.Levels)))
	binary.LittleEndian.PutUint64(payload[8:16], snap.Incarnation)
	binary.LittleEndian.PutUint64(payload[16:24], uint64(snap.SRN))
	binary.LittleEndian.PutUint64(payload[24:32], uint64(snap.RRN))
	binary.LittleEndian.PutUint64(payload[32:40], uint64(snap.MaxRoundSeen))
	binary.LittleEndian.PutUint64(payload[40:48], uint64(snap.TimeoutUnit))
	binary.LittleEndian.PutUint64(payload[48:56], uint64(snap.AlivePeriod))
	for i, v := range snap.Levels {
		binary.LittleEndian.PutUint64(payload[filePayloadFixed+8*i:], uint64(v))
	}
	binary.LittleEndian.PutUint32(b[0:4], uint32(plen))
	binary.LittleEndian.PutUint32(b[4:8], crc32.ChecksumIEEE(payload))
	if _, err := s.f.Write(b); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	e := s.entries[snap.Proc]
	if e == nil {
		e = &fileEntry{}
		s.entries[snap.Proc] = e
	}
	snap.CopyInto(&e.snap)
	e.fresh = true
	return nil
}

// Load implements Store. When the open scan found damage, loads that may
// have lost newer state to it — a missing process, or a process whose
// latest record predates this session — carry an error wrapping ErrCorrupt;
// a valid older snapshot is still returned alongside it when one exists.
func (s *FileStore) Load(proc int) (*Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("journal: store closed")
	}
	e := s.entries[proc]
	if e == nil {
		return nil, s.scanErr
	}
	out := &Snapshot{}
	e.snap.CopyInto(out)
	if e.fresh {
		return out, nil
	}
	return out, s.scanErr
}

// Close implements Store, syncing the file first.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	syncErr := s.f.Sync()
	closeErr := s.f.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

var _ Store = (*FileStore)(nil)
