package journal

import (
	"errors"
	"io"
	"syscall"
	"testing"
)

func snapFor(proc int) *Snapshot {
	return &Snapshot{Proc: proc, RRN: 2, SRN: 1, Levels: []int64{0, 1, 2}}
}

func TestFaultStorePassthrough(t *testing.T) {
	fs := NewFaultStore(NewMem())
	if err := fs.Save(snapFor(1)); err != nil {
		t.Fatalf("clean save: %v", err)
	}
	snap, err := fs.Load(1)
	if err != nil || snap == nil {
		t.Fatalf("clean load: %v %v", snap, err)
	}
	if saves, loads := fs.Injected(); saves != 0 || loads != 0 {
		t.Fatalf("injected counters moved on clean path: %d %d", saves, loads)
	}
}

func TestFaultStoreSaveModes(t *testing.T) {
	cases := []struct {
		mode FaultMode
		want error
	}{
		{FaultEIO, syscall.EIO},
		{FaultENOSPC, syscall.ENOSPC},
		{FaultShortWrite, io.ErrShortWrite},
	}
	for _, tc := range cases {
		fs := NewFaultStore(NewMem())
		fs.SetFault(FaultAll, tc.mode)
		err := fs.Save(snapFor(0))
		if !errors.Is(err, tc.want) {
			t.Errorf("%v: Save error = %v, want wrapping %v", tc.mode, err, tc.want)
		}
		if !IsInjected(err) {
			t.Errorf("%v: IsInjected = false", tc.mode)
		}
		if saves, _ := fs.Injected(); saves != 1 {
			t.Errorf("%v: injected saves = %d", tc.mode, saves)
		}
		// The failed save must not have reached the inner store.
		if snap, _ := fs.Load(0); snap != nil {
			t.Errorf("%v: failed save persisted", tc.mode)
		}
	}
}

func TestFaultStoreBitflip(t *testing.T) {
	fs := NewFaultStore(NewMem())
	if err := fs.Save(snapFor(2)); err != nil {
		t.Fatalf("save: %v", err)
	}
	fs.SetFault(2, FaultBitflip)
	// Saves still succeed under bitflip (the damage is at rest).
	if err := fs.Save(snapFor(2)); err != nil {
		t.Fatalf("save under bitflip: %v", err)
	}
	snap, err := fs.Load(2)
	if snap != nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load = (%v, %v), want (nil, ErrCorrupt)", snap, err)
	}
	if _, loads := fs.Injected(); loads != 1 {
		t.Fatalf("injected loads = %d", loads)
	}
	// Clearing the fault recovers the stored snapshot intact.
	fs.SetFault(2, FaultOff)
	snap, err = fs.Load(2)
	if err != nil || snap == nil || snap.Proc != 2 {
		t.Fatalf("post-heal load = (%v, %v)", snap, err)
	}
}

func TestFaultStoreScoping(t *testing.T) {
	fs := NewFaultStore(NewMem())
	fs.SetFault(FaultAll, FaultEIO)
	// A per-process entry overrides the wildcard.
	fs.SetFault(1, FaultENOSPC)
	if err := fs.Save(snapFor(1)); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("override mode = %v", err)
	}
	if err := fs.Save(snapFor(0)); !errors.Is(err, syscall.EIO) {
		t.Fatalf("wildcard mode = %v", err)
	}
	// FaultAll+FaultOff clears everything, including per-process modes.
	fs.SetFault(FaultAll, FaultOff)
	if err := fs.Save(snapFor(1)); err != nil {
		t.Fatalf("post-clear save: %v", err)
	}
}

func TestFaultModeParse(t *testing.T) {
	for _, m := range []FaultMode{FaultOff, FaultEIO, FaultENOSPC, FaultShortWrite, FaultBitflip} {
		back, err := ParseFaultMode(m.String())
		if err != nil || back != m {
			t.Errorf("round trip %v: %v %v", m, back, err)
		}
	}
	if _, err := ParseFaultMode("sparks"); err == nil {
		t.Error("unknown mode accepted")
	}
}
