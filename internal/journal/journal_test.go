package journal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func sampleSnap(proc int, rrn int64) *Snapshot {
	return &Snapshot{
		Proc:         proc,
		Incarnation:  3,
		SRN:          rrn + 1,
		RRN:          rrn,
		MaxRoundSeen: rrn + 2,
		TimeoutUnit:  2 * time.Millisecond,
		AlivePeriod:  10 * time.Millisecond,
		Levels:       []int64{0, 1, 2, rrn},
	}
}

func equalSnap(a, b *Snapshot) bool {
	if a.Proc != b.Proc || a.Incarnation != b.Incarnation ||
		a.SRN != b.SRN || a.RRN != b.RRN || a.MaxRoundSeen != b.MaxRoundSeen ||
		a.TimeoutUnit != b.TimeoutUnit || a.AlivePeriod != b.AlivePeriod ||
		len(a.Levels) != len(b.Levels) {
		return false
	}
	for i := range a.Levels {
		if a.Levels[i] != b.Levels[i] {
			return false
		}
	}
	return true
}

func TestMemRoundtrip(t *testing.T) {
	m := NewMem()
	defer m.Close()
	in := sampleSnap(2, 40)
	if err := m.Save(in); err != nil {
		t.Fatal(err)
	}
	// The store must not alias the saved snapshot.
	in.Levels[0] = 99
	in.RRN = 1
	out, err := m.Load(2)
	if err != nil || out == nil {
		t.Fatalf("Load = %v, %v", out, err)
	}
	if out.Levels[0] != 0 || out.RRN != 40 {
		t.Fatalf("store aliased the caller's snapshot: %+v", out)
	}
	if s, err := m.Load(7); s != nil || err != nil {
		t.Fatalf("missing proc: want nil, nil; got %v, %v", s, err)
	}
}

func TestFileRoundtripAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	fs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for rrn := int64(1); rrn <= 5; rrn++ {
		for proc := 0; proc < 3; proc++ {
			if err := fs.Save(sampleSnap(proc, rrn)); err != nil {
				t.Fatal(err)
			}
		}
	}
	check := func(s Store) {
		t.Helper()
		for proc := 0; proc < 3; proc++ {
			got, err := s.Load(proc)
			if err != nil {
				t.Fatalf("Load(%d): %v", proc, err)
			}
			if want := sampleSnap(proc, 5); got == nil || !equalSnap(got, want) {
				t.Fatalf("Load(%d) = %+v, want %+v", proc, got, want)
			}
		}
	}
	check(fs)
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: the last record per process must survive.
	fs2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	check(fs2)
	if s, err := fs2.Load(9); s != nil || err != nil {
		t.Fatalf("missing proc on clean file: want nil, nil; got %v, %v", s, err)
	}
}

// corruptTail opens the journal file raw and mutates its tail with fn,
// returning the original size.
func corruptTail(t *testing.T, path string, fn func(f *os.File, size int64)) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	fn(f, st.Size())
}

// writeJournal writes snapshots for procs 0..2 at rounds 1..3 and closes.
func writeJournal(t *testing.T, path string) {
	t.Helper()
	fs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for rrn := int64(1); rrn <= 3; rrn++ {
		for proc := 0; proc < 3; proc++ {
			if err := fs.Save(sampleSnap(proc, rrn)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
}

// reopenExpectDegraded reopens a damaged journal and asserts the
// graceful-degradation contract: open succeeds, loads return the newest
// record from the valid prefix together with an error wrapping ErrCorrupt,
// and a fresh save clears the taint for that process.
func reopenExpectDegraded(t *testing.T, path string, wantRRN int64) {
	t.Helper()
	fs, err := OpenFile(path)
	if err != nil {
		t.Fatalf("open after damage must degrade, not fail: %v", err)
	}
	defer fs.Close()
	got, err := fs.Load(2)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load after damage: err = %v, want ErrCorrupt", err)
	}
	if wantRRN == 0 {
		if got != nil {
			t.Fatalf("expected no surviving record, got %+v", got)
		}
	} else if got == nil || !equalSnap(got, sampleSnap(2, wantRRN)) {
		t.Fatalf("Load after damage = %+v, want round %d snapshot", got, wantRRN)
	}
	// A save through the reopened handle postdates the damage: loads of
	// that process are clean again, and survive another reopen.
	if err := fs.Save(sampleSnap(2, 9)); err != nil {
		t.Fatal(err)
	}
	got, err = fs.Load(2)
	if err != nil || !equalSnap(got, sampleSnap(2, 9)) {
		t.Fatalf("Load after repair+save = %+v, %v", got, err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	fs2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	if got, err := fs2.Load(2); err != nil || !equalSnap(got, sampleSnap(2, 9)) {
		t.Fatalf("reopen after repair: %+v, %v", got, err)
	}
}

func TestFileTornWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	writeJournal(t, path)
	// Simulate a torn final write: half a record's worth of garbage
	// appended where a record header should be.
	corruptTail(t, path, func(f *os.File, size int64) {
		if _, err := f.WriteAt([]byte{0xde, 0xad, 0xbe}, size); err != nil {
			t.Fatal(err)
		}
	})
	reopenExpectDegraded(t, path, 3)
}

func TestFileTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	writeJournal(t, path)
	// Chop the file mid-record: the last record loses its payload tail.
	corruptTail(t, path, func(f *os.File, size int64) {
		if err := f.Truncate(size - 5); err != nil {
			t.Fatal(err)
		}
	})
	// Proc 2's round-3 record was last; truncation invalidates it, so the
	// newest valid record for proc 2 is round 2.
	reopenExpectDegraded(t, path, 2)
}

func TestFileBitFlip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	writeJournal(t, path)
	// Flip one bit inside the last record's payload: CRC must catch it.
	corruptTail(t, path, func(f *os.File, size int64) {
		var b [1]byte
		if _, err := f.ReadAt(b[:], size-4); err != nil {
			t.Fatal(err)
		}
		b[0] ^= 0x10
		if _, err := f.WriteAt(b[:], size-4); err != nil {
			t.Fatal(err)
		}
	})
	reopenExpectDegraded(t, path, 2)
}

func TestFileAllGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	if err := os.WriteFile(path, []byte("this is not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFile(path)
	if err != nil {
		t.Fatalf("open of garbage must degrade, not fail: %v", err)
	}
	defer fs.Close()
	got, err := fs.Load(0)
	if got != nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load on garbage journal = %+v, %v; want nil, ErrCorrupt", got, err)
	}
	// The garbage was truncated away; the store is usable again.
	if err := fs.Save(sampleSnap(0, 1)); err != nil {
		t.Fatal(err)
	}
	if got, err := fs.Load(0); err != nil || !equalSnap(got, sampleSnap(0, 1)) {
		t.Fatalf("save after garbage repair: %+v, %v", got, err)
	}
}

func TestFileBitFlipInLength(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	writeJournal(t, path)
	// Flip a high bit in the FIRST record's length field: the whole file
	// after it is unwalkable, so no record survives.
	corruptTail(t, path, func(f *os.File, _ int64) {
		var b [1]byte
		if _, err := f.ReadAt(b[:], 2); err != nil {
			t.Fatal(err)
		}
		b[0] ^= 0x80
		if _, err := f.WriteAt(b[:], 2); err != nil {
			t.Fatal(err)
		}
	})
	reopenExpectDegraded(t, path, 0)
}
