package runtime

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/proc"
)

// churnNode is one incarnation of the process under churn. Every callback
// checks that the incarnation is still the live one: a message or timer
// reaching a crashed or superseded incarnation is exactly the leak the
// runtime's incarnation stamps and timer generations exist to prevent.
type churnNode struct {
	env        proc.Env
	dead       atomic.Bool
	cur        *atomic.Pointer[churnNode]
	violations *atomic.Uint64
	delivered  *atomic.Uint64
}

func (n *churnNode) Start(env proc.Env) {
	n.env = env
	env.SetTimer(1, time.Millisecond)
}

func (n *churnNode) OnMessage(from proc.ID, msg any) {
	if n.dead.Load() || n.cur.Load() != n {
		n.violations.Add(1)
		return
	}
	n.delivered.Add(1)
}

func (n *churnNode) OnTimer(key proc.TimerKey) {
	if n.dead.Load() || n.cur.Load() != n {
		n.violations.Add(1)
		return
	}
	n.env.SetTimer(1, time.Millisecond)
}

func (n *churnNode) OnCrash() { n.dead.Store(true) }

// TestRapidChurnIncarnationIsolation hammers Crash/Restart on a process
// while a peer keeps blasting messages at it through delayed links: ~100
// crash/restart cycles with sub-millisecond downtimes. It checks the
// churn-isolation contract end to end — no delivery ever reaches a dead or
// superseded incarnation (stale copies are dropped instead), the final
// incarnation is live and receiving, and the mailbox drains rather than
// leaking events queued across the cycles. Run under -race this also
// covers the swap path (Restart's build + Start under the callback lock)
// against concurrent senders and timers.
func TestRapidChurnIncarnationIsolation(t *testing.T) {
	const cycles = 100

	var (
		violations atomic.Uint64
		delivered  atomic.Uint64
		cur        atomic.Pointer[churnNode]
	)
	mkNode := func() *churnNode {
		n := &churnNode{cur: &cur, violations: &violations, delivered: &delivered}
		cur.Store(n)
		return n
	}

	// Delayed links keep copies in flight across the crash windows, so all
	// three drop sites get exercised: arrival while down, stale-incarnation
	// discard at processing, and plain live delivery.
	var rngMu sync.Mutex
	rng := rand.New(rand.NewSource(7))
	delay := func(from, to proc.ID, msg any) time.Duration {
		rngMu.Lock()
		defer rngMu.Unlock()
		return time.Duration(rng.Intn(300)) * time.Microsecond
	}

	c, err := New(Config{N: 2, Delay: delay})
	if err != nil {
		t.Fatal(err)
	}
	sender := &pingNode{}
	c.Register(0, sender)
	c.Register(1, mkNode())
	c.Start()
	defer c.Stop()

	sender.mu.Lock()
	env := sender.env
	sender.mu.Unlock()

	stop := make(chan struct{})
	var senderDone sync.WaitGroup
	senderDone.Add(1)
	go func() {
		defer senderDone.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			env.Send(1, i)
			time.Sleep(50 * time.Microsecond)
		}
	}()

	for i := 0; i < cycles; i++ {
		c.Crash(1)
		if !c.Crashed(1) {
			t.Fatal("Crash did not take")
		}
		time.Sleep(200 * time.Microsecond)
		if !c.Restart(1, func() proc.Node { return mkNode() }) {
			t.Fatalf("cycle %d: Restart refused", i)
		}
		if c.Crashed(1) {
			t.Fatalf("cycle %d: process still down after Restart", i)
		}
		time.Sleep(200 * time.Microsecond)
	}
	close(stop)
	senderDone.Wait()

	// Every cycle swapped in a fresh incarnation.
	env1 := c.envs[1]
	env1.mu.Lock()
	inc := env1.inc
	env1.mu.Unlock()
	if inc != cycles {
		t.Fatalf("incarnation counter = %d, want %d", inc, cycles)
	}

	// The final incarnation is live: fresh sends reach it.
	before := delivered.Load()
	for i := 0; i < 20; i++ {
		env.Send(1, "post-churn")
	}
	if !waitFor(t, 2*time.Second, func() bool { return delivered.Load() > before }) {
		t.Fatal("final incarnation receives nothing")
	}

	// The mailbox drains: nothing queued across the cycles leaks.
	if !waitFor(t, 2*time.Second, func() bool {
		env1.box.mu.Lock()
		n := len(env1.box.items)
		env1.box.mu.Unlock()
		return n == 0
	}) {
		t.Fatal("mailbox did not drain after churn")
	}

	if v := violations.Load(); v != 0 {
		t.Fatalf("%d callbacks reached a dead or superseded incarnation", v)
	}
	// With 100 sub-millisecond downtimes under continuous fire, copies must
	// have died at the closed door (or as stale leftovers) — if none did,
	// the test exercised nothing.
	if s := c.Stats(); s.Dropped == 0 {
		t.Fatalf("no drops across %d cycles: churn never raced a delivery (stats %+v)", cycles, s)
	}
}
