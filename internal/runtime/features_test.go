package runtime

import (
	"testing"
	"time"

	"repro/internal/proc"
	"repro/internal/wire"
)

// TestMulticastDelivers: one Multicast reaches exactly the destination set,
// and the link tap counts one transmission per member.
func TestMulticastDelivers(t *testing.T) {
	c, err := New(Config{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*pingNode, 4)
	for i := range nodes {
		nodes[i] = &pingNode{}
		c.Register(i, nodes[i])
	}
	c.Start()
	defer c.Stop()

	nodes[0].mu.Lock()
	env := nodes[0].env
	nodes[0].mu.Unlock()
	env.Multicast(proc.OthersSet(4, 0), &wire.Heartbeat{Seq: 1})

	for _, id := range []int{1, 2, 3} {
		node := nodes[id]
		if !waitFor(t, time.Second, func() bool { n, _ := node.counts(); return n == 1 }) {
			t.Fatalf("process %d did not receive the multicast", id)
		}
	}
	if n, _ := nodes[0].counts(); n != 0 {
		t.Fatal("multicast delivered to an excluded destination")
	}
	st := c.Stats()
	if st.Sent != 3 || st.Delivered != 3 || st.Dropped != 0 {
		t.Fatalf("stats = %+v, want Sent 3 Delivered 3", st)
	}
	if st.ByKind[wire.KindHeartbeat] != 3 || st.Bytes == 0 {
		t.Fatalf("per-kind tap wrong: %+v", st)
	}
}

// TestRestartBringsFreshIncarnation: crash-then-Restart revives the process
// synchronously with a new node; messages addressed to the downtime are
// dropped (and counted), messages after the restart reach the new node.
func TestRestartBringsFreshIncarnation(t *testing.T) {
	c, err := New(Config{N: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, b1 := &pingNode{}, &pingNode{}
	c.Register(0, a)
	c.Register(1, b1)
	c.Start()
	defer c.Stop()

	a.mu.Lock()
	env := a.env
	a.mu.Unlock()

	c.Crash(1)
	if !c.Crashed(1) {
		t.Fatal("Crash not synchronous")
	}
	if c.Restart(0, func() proc.Node { return &pingNode{} }) {
		t.Fatal("Restart revived a process that was not down")
	}
	env.Send(1, "lost") // addressed to a crashed process: dropped at arrival
	if !waitFor(t, time.Second, func() bool { return c.Stats().Dropped >= 1 }) {
		t.Fatalf("downtime message not counted dropped: %+v", c.Stats())
	}

	b2 := &pingNode{}
	if !c.Restart(1, func() proc.Node { return b2 }) {
		t.Fatal("Restart refused a crashed process")
	}
	if c.Crashed(1) {
		t.Fatal("Restart not synchronous")
	}
	b2.mu.Lock()
	started := b2.env != nil
	b2.mu.Unlock()
	if !started {
		t.Fatal("new incarnation not started")
	}
	env.Send(1, "fresh")
	if !waitFor(t, time.Second, func() bool { n, _ := b2.counts(); return n == 1 }) {
		t.Fatal("new incarnation receives nothing")
	}
	if n, _ := b1.counts(); n != 0 {
		t.Fatal("old incarnation leaked a delivery")
	}
}
