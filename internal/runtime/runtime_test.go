package runtime

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/proc"
)

// pingNode counts messages and timers, for transport-level tests.
type pingNode struct {
	mu       sync.Mutex
	env      proc.Env
	received []any
	timers   int
	crashed  bool
}

func (p *pingNode) Start(env proc.Env) { p.mu.Lock(); p.env = env; p.mu.Unlock() }
func (p *pingNode) OnMessage(from proc.ID, msg any) {
	p.mu.Lock()
	p.received = append(p.received, msg)
	p.mu.Unlock()
}
func (p *pingNode) OnTimer(key proc.TimerKey) {
	p.mu.Lock()
	p.timers++
	p.mu.Unlock()
}
func (p *pingNode) OnCrash() { p.mu.Lock(); p.crashed = true; p.mu.Unlock() }

func (p *pingNode) counts() (int, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.received), p.timers
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

func TestDeliveryAndTimers(t *testing.T) {
	c, err := New(Config{N: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, b := &pingNode{}, &pingNode{}
	c.Register(0, a)
	c.Register(1, b)
	c.Start()
	defer c.Stop()

	waitFor(t, time.Second, func() bool { a.mu.Lock(); defer a.mu.Unlock(); return a.env != nil })
	a.mu.Lock()
	env := a.env
	a.mu.Unlock()
	env.Send(1, "hello")
	env.SetTimer(1, 5*time.Millisecond)

	if !waitFor(t, time.Second, func() bool { n, _ := b.counts(); return n == 1 }) {
		t.Fatal("message not delivered")
	}
	if !waitFor(t, time.Second, func() bool { _, n := a.counts(); return n == 1 }) {
		t.Fatal("timer did not fire")
	}
}

func TestTimerRearmReplaces(t *testing.T) {
	c, err := New(Config{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := &pingNode{}
	c.Register(0, a)
	c.Start()
	defer c.Stop()
	waitFor(t, time.Second, func() bool { a.mu.Lock(); defer a.mu.Unlock(); return a.env != nil })
	a.mu.Lock()
	env := a.env
	a.mu.Unlock()
	env.SetTimer(1, 5*time.Millisecond)
	env.SetTimer(1, 300*time.Millisecond) // replaces; old fire must be dropped
	time.Sleep(50 * time.Millisecond)
	if _, n := a.counts(); n != 0 {
		t.Fatalf("stale timer fired (%d)", n)
	}
}

func TestStopTimer(t *testing.T) {
	c, err := New(Config{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := &pingNode{}
	c.Register(0, a)
	c.Start()
	defer c.Stop()
	waitFor(t, time.Second, func() bool { a.mu.Lock(); defer a.mu.Unlock(); return a.env != nil })
	a.mu.Lock()
	env := a.env
	a.mu.Unlock()
	env.SetTimer(2, 10*time.Millisecond)
	env.StopTimer(2)
	time.Sleep(50 * time.Millisecond)
	if _, n := a.counts(); n != 0 {
		t.Fatal("stopped timer fired")
	}
}

func TestCrashStopsProcess(t *testing.T) {
	c, err := New(Config{N: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, b := &pingNode{}, &pingNode{}
	c.Register(0, a)
	c.Register(1, b)
	c.Start()
	defer c.Stop()
	waitFor(t, time.Second, func() bool { b.mu.Lock(); defer b.mu.Unlock(); return b.env != nil })
	c.Crash(1)
	if !waitFor(t, time.Second, func() bool { b.mu.Lock(); defer b.mu.Unlock(); return b.crashed }) {
		t.Fatal("OnCrash not invoked")
	}
	if !c.Crashed(1) {
		t.Fatal("Crashed(1) = false")
	}
	a.mu.Lock()
	env := a.env
	a.mu.Unlock()
	env.Send(1, "late")
	time.Sleep(30 * time.Millisecond)
	if n, _ := b.counts(); n != 0 {
		t.Fatal("crashed process received a message")
	}
}

func TestDelayFuncApplied(t *testing.T) {
	var delayed bool
	c, err := New(Config{N: 2, Delay: func(from, to proc.ID, msg any) time.Duration {
		delayed = true
		return 20 * time.Millisecond
	}})
	if err != nil {
		t.Fatal(err)
	}
	a, b := &pingNode{}, &pingNode{}
	c.Register(0, a)
	c.Register(1, b)
	c.Start()
	defer c.Stop()
	waitFor(t, time.Second, func() bool { a.mu.Lock(); defer a.mu.Unlock(); return a.env != nil })
	start := time.Now()
	a.mu.Lock()
	env := a.env
	a.mu.Unlock()
	env.Send(1, "x")
	if !waitFor(t, time.Second, func() bool { n, _ := b.counts(); return n == 1 }) {
		t.Fatal("not delivered")
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("delivered after %v, want >= ~20ms", elapsed)
	}
	if !delayed {
		t.Fatal("delay func not consulted")
	}
}

// TestLiveLeaderElection runs the paper's Figure 3 algorithm over real
// goroutines and channels: all processes must converge on a common correct
// leader, and survive the leader crashing. Margins are generous; the test
// asserts eventual agreement, not timing.
func TestLiveLeaderElection(t *testing.T) {
	const n, tt = 4, 1
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(1))
	cluster, err := New(Config{N: n, Delay: func(from, to proc.ID, msg any) time.Duration {
		mu.Lock()
		defer mu.Unlock()
		return time.Duration(rng.Intn(300)) * time.Microsecond
	}})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*core.Node, n)
	for id := 0; id < n; id++ {
		node, err := core.NewNode(id, core.Config{
			N: n, T: tt,
			Variant:     core.VariantFig3,
			AlivePeriod: 4 * time.Millisecond,
			TimeoutUnit: time.Millisecond,
			Retention:   4096,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[id] = node
		cluster.Register(id, node)
	}
	cluster.Start()
	defer cluster.Stop()

	// leaderOf reads a node's estimate through Inspect, which serializes
	// the read against the node's own callbacks (the supported way to
	// observe live protocol state).
	leaderOf := func(id proc.ID) proc.ID {
		var l proc.ID
		cluster.Inspect(id, func() { l = nodes[id].Leader() })
		return l
	}
	agreeOnCorrect := func() bool {
		leader := proc.None
		for id := range nodes {
			if cluster.Crashed(id) {
				continue
			}
			l := leaderOf(id)
			if cluster.Crashed(l) {
				return false
			}
			if leader == proc.None {
				leader = l
			} else if l != leader {
				return false
			}
		}
		return leader != proc.None
	}
	if !waitFor(t, 10*time.Second, agreeOnCorrect) {
		t.Fatal("no common correct leader before crash")
	}

	// Crash the current leader; a new common correct leader must emerge.
	victim := leaderOf(0)
	cluster.Crash(victim)
	if !waitFor(t, 20*time.Second, agreeOnCorrect) {
		t.Fatalf("no re-election after crashing leader %d", victim)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{N: 0}); err == nil {
		t.Fatal("N=0 accepted")
	}
}

func TestDoubleStartPanics(t *testing.T) {
	c, _ := New(Config{N: 1})
	c.Register(0, &pingNode{})
	c.Start()
	defer c.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("double Start did not panic")
		}
	}()
	c.Start()
}
