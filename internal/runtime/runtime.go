// Package runtime runs the same proc.Node protocol code that the simulator
// drives, but live: one goroutine per process, channel-based links with an
// injectable delay function, and real wall-clock timers. It exists to
// demonstrate that the algorithms are transport-independent (the examples
// use it) and to exercise the implementations under true concurrency (the
// race detector runs over these tests).
//
// Concurrency model: each process has a single consumer goroutine that
// serializes all callbacks of its node, preserving the proc.Node contract
// (the paper's atomically-executed statement blocks). Sends enqueue into the
// destination's unbounded mailbox after the injected delay; links are
// reliable and unordered, like the model's.
package runtime

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/proc"
)

// DelayFunc chooses a per-message transfer delay. It must be safe for
// concurrent use. nil means immediate delivery.
type DelayFunc func(from, to proc.ID, msg any) time.Duration

// Config parameterizes a Cluster.
type Config struct {
	N     int
	Delay DelayFunc
}

// event is one unit of work for a process goroutine.
type event struct {
	kind int // 0 message, 1 timer
	from proc.ID
	msg  any
	key  proc.TimerKey
	tgen uint64
}

// Cluster owns the processes and their links.
type Cluster struct {
	cfg     Config
	nodes   []proc.Node
	envs    []*renv
	started bool
	stopped chan struct{}
	wg      sync.WaitGroup
}

// New creates a cluster; register nodes, then Start it.
func New(cfg Config) (*Cluster, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("runtime: N must be >= 1, got %d", cfg.N)
	}
	c := &Cluster{cfg: cfg, nodes: make([]proc.Node, cfg.N), stopped: make(chan struct{})}
	c.envs = make([]*renv, cfg.N)
	for i := range c.envs {
		c.envs[i] = newREnv(c, i)
	}
	return c, nil
}

// Register installs node as process id; must precede Start.
func (c *Cluster) Register(id proc.ID, node proc.Node) {
	if c.started {
		panic("runtime: Register after Start")
	}
	if c.nodes[id] != nil {
		panic(fmt.Sprintf("runtime: process %d registered twice", id))
	}
	c.nodes[id] = node
}

// Start runs every node's Start callback (synchronously, so the cluster is
// fully initialized when Start returns) and launches the process
// goroutines.
func (c *Cluster) Start() {
	if c.started {
		panic("runtime: double Start")
	}
	c.started = true
	for id, n := range c.nodes {
		if n == nil {
			panic(fmt.Sprintf("runtime: process %d not registered", id))
		}
	}
	for id := range c.nodes {
		env := c.envs[id]
		env.node = c.nodes[id]
		env.handleMu.Lock()
		env.node.Start(env)
		env.handleMu.Unlock()
	}
	for id := range c.nodes {
		c.wg.Add(1)
		go c.runProcess(id)
	}
}

// runProcess is the per-process event loop; it serializes all callbacks.
func (c *Cluster) runProcess(id proc.ID) {
	defer c.wg.Done()
	env := c.envs[id]
	for {
		ev, ok := env.box.pop(c.stopped)
		if !ok {
			return
		}
		env.handle(ev)
		if env.isCrashed() {
			// Keep draining (and discarding) so senders never care,
			// but deliver nothing further.
			continue
		}
	}
}

// Crash marks process id crashed: it stops sending, receiving, and firing
// timers, like a crash-stop failure. The crash is applied synchronously
// (serialized against the process's callbacks), so Crashed(id) holds when
// Crash returns.
func (c *Cluster) Crash(id proc.ID) {
	env := c.envs[id]
	env.handleMu.Lock()
	defer env.handleMu.Unlock()
	env.mu.Lock()
	if env.crashed {
		env.mu.Unlock()
		return
	}
	env.crashed = true
	for _, slot := range env.timers {
		slot.gen++
		if slot.timer != nil {
			slot.timer.Stop()
		}
	}
	node := env.node
	env.mu.Unlock()
	if cr, ok := node.(proc.Crashable); ok && node != nil {
		cr.OnCrash()
	}
}

// Crashed reports whether the process was crashed via Crash.
func (c *Cluster) Crashed(id proc.ID) bool { return c.envs[id].isCrashed() }

// Inspect runs f serialized against process id's callbacks: while f runs,
// no message, timer or crash callback of that process executes, so f may
// safely read (or, carefully, poke) the node's protocol state from any
// goroutine. f must not call Inspect or block on the cluster.
func (c *Cluster) Inspect(id proc.ID, f func()) {
	c.LockProcess(id)
	defer c.UnlockProcess(id)
	f()
}

// LockProcess and UnlockProcess are Inspect's primitive form, for callers
// that must avoid the closure: between them, no callback of process id
// executes. Allocation-free.
func (c *Cluster) LockProcess(id proc.ID)   { c.envs[id].handleMu.Lock() }
func (c *Cluster) UnlockProcess(id proc.ID) { c.envs[id].handleMu.Unlock() }

// Stop shuts the cluster down and waits for all process goroutines and
// pending timers to finish. The cluster cannot be restarted.
func (c *Cluster) Stop() {
	close(c.stopped)
	for _, env := range c.envs {
		env.stopAllTimers()
	}
	c.wg.Wait()
}

// renv implements proc.Env for one live process.
type renv struct {
	cluster *Cluster
	id      proc.ID
	node    proc.Node
	box     *mailbox
	start   time.Time

	// handleMu serializes node callbacks with Inspect: the consumer
	// goroutine holds it across every callback, so Inspect callers get a
	// consistent view of the protocol state. Uncontended in steady state.
	handleMu sync.Mutex

	mu      sync.Mutex
	crashed bool
	timers  map[proc.TimerKey]*timerSlot
}

type timerSlot struct {
	gen   uint64
	timer *time.Timer
}

func newREnv(c *Cluster, id proc.ID) *renv {
	return &renv{
		cluster: c,
		id:      id,
		box:     newMailbox(),
		start:   time.Now(),
		timers:  make(map[proc.TimerKey]*timerSlot),
	}
}

func (e *renv) ID() proc.ID        { return e.id }
func (e *renv) N() int             { return e.cluster.cfg.N }
func (e *renv) Now() time.Duration { return time.Since(e.start) }

func (e *renv) isCrashed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.crashed
}

// Send implements proc.Env.
func (e *renv) Send(to proc.ID, msg any) {
	if e.isCrashed() {
		return
	}
	dst := e.cluster.envs[to]
	var d time.Duration
	if f := e.cluster.cfg.Delay; f != nil {
		d = f(e.id, to, msg)
	}
	ev := event{kind: 0, from: e.id, msg: msg}
	if d <= 0 {
		dst.box.push(ev)
		return
	}
	t := time.AfterFunc(d, func() {
		select {
		case <-e.cluster.stopped:
		default:
			dst.box.push(ev)
		}
	})
	_ = t // in-flight messages are dropped wholesale at Stop
}

// SetTimer implements proc.Env.
func (e *renv) SetTimer(key proc.TimerKey, d time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return
	}
	slot := e.timers[key]
	if slot == nil {
		slot = &timerSlot{}
		e.timers[key] = slot
	} else if slot.timer != nil {
		slot.timer.Stop()
	}
	slot.gen++
	gen := slot.gen
	if d < 0 {
		d = 0
	}
	slot.timer = time.AfterFunc(d, func() {
		e.box.push(event{kind: 1, key: key, tgen: gen})
	})
}

// StopTimer implements proc.Env.
func (e *renv) StopTimer(key proc.TimerKey) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if slot := e.timers[key]; slot != nil {
		slot.gen++ // invalidate any in-flight fire
		if slot.timer != nil {
			slot.timer.Stop()
		}
	}
}

func (e *renv) stopAllTimers() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, slot := range e.timers {
		slot.gen++
		if slot.timer != nil {
			slot.timer.Stop()
		}
	}
}

// handle runs one event on the owning goroutine, serialized with Inspect.
func (e *renv) handle(ev event) {
	if e.isCrashed() {
		return
	}
	e.handleMu.Lock()
	defer e.handleMu.Unlock()
	switch ev.kind {
	case 0:
		e.node.OnMessage(ev.from, ev.msg)
	case 1:
		e.mu.Lock()
		slot := e.timers[ev.key]
		live := slot != nil && slot.gen == ev.tgen
		e.mu.Unlock()
		if live {
			e.node.OnTimer(ev.key)
		}
	}
}

var _ proc.Env = (*renv)(nil)

// mailbox is an unbounded MPSC queue: senders never block (links must not
// exert backpressure in the model) and the single consumer waits on a
// condition signal.
type mailbox struct {
	mu     sync.Mutex
	items  []event
	signal chan struct{}
}

func newMailbox() *mailbox {
	return &mailbox{signal: make(chan struct{}, 1)}
}

func (m *mailbox) push(ev event) {
	m.mu.Lock()
	m.items = append(m.items, ev)
	m.mu.Unlock()
	select {
	case m.signal <- struct{}{}:
	default:
	}
}

// pop blocks until an event is available or stop is closed.
func (m *mailbox) pop(stop <-chan struct{}) (event, bool) {
	for {
		m.mu.Lock()
		if len(m.items) > 0 {
			ev := m.items[0]
			m.items = m.items[1:]
			m.mu.Unlock()
			return ev, true
		}
		m.mu.Unlock()
		select {
		case <-m.signal:
		case <-stop:
			return event{}, false
		}
	}
}
