// Package runtime runs the same proc.Node protocol code that the simulator
// drives, but live: one goroutine per process, channel-based links with an
// injectable delay function, and real wall-clock timers. It exists to
// demonstrate that the algorithms are transport-independent (the examples
// use it) and to exercise the implementations under true concurrency (the
// race detector runs over these tests).
//
// Concurrency model: each process has a single consumer goroutine that
// serializes all callbacks of its node, preserving the proc.Node contract
// (the paper's atomically-executed statement blocks). Sends enqueue into the
// destination's unbounded mailbox after the injected delay; links are
// reliable and unordered, like the model's.
//
// The cluster is full-featured relative to the simulator where live
// semantics permit: links carry counting taps (Stats mirrors netsim.Stats
// field-for-field), crashed processes can be replaced by fresh incarnations
// (Restart — churn in a crash-stop world), and a per-delivery observer hook
// (Config.OnDeliver) runs on the receiving process's goroutine under its
// callback serialization, so it may read that node's protocol state
// race-free. What the live cluster cannot offer is determinism and the
// assumption machinery (delay schedules beyond Config.Delay, order gates);
// the star façade declares exactly this split via transport capabilities.
package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitset"
	"repro/internal/proc"
	"repro/internal/wire"
)

// DelayFunc chooses a per-message transfer delay. It must be safe for
// concurrent use. nil means immediate delivery.
type DelayFunc func(from, to proc.ID, msg any) time.Duration

// Config parameterizes a Cluster.
type Config struct {
	N     int
	Delay DelayFunc

	// OnDeliver, when non-nil, observes every message delivery, after the
	// receiving node processed it. It runs on the receiver's consumer
	// goroutine while that process's callback lock is held (the same lock
	// LockProcess/Inspect take), so it may read process to's protocol
	// state without further synchronization. It must be safe for
	// concurrent invocation across DIFFERENT receivers, and must not call
	// back into the cluster.
	OnDeliver func(to proc.ID)

	// Fault, when non-nil, is the chaos-layer link-fault overlay: a send it
	// refuses is dropped (counted sent and dropped, like a faulted link),
	// and its Delay adds to the configured DelayFunc. It is called from
	// process goroutines and must be safe for concurrent use.
	Fault LinkFault
}

// LinkFault is the chaos overlay seam, shared shape-for-shape with the
// netsim and tcpnet transports so one fault state drives all three.
type LinkFault interface {
	Admit(from, to proc.ID) bool
	Delay(from, to proc.ID) time.Duration
}

// Stats aggregates link-level counters, mirroring netsim.Stats field for
// field (the star façade converts one to the other). Counters are updated
// atomically by the process goroutines; Stats() snapshots are internally
// consistent only in the eventual sense a live system allows.
type Stats struct {
	Sent      uint64 // messages handed to the links
	Delivered uint64 // messages delivered to live processes
	Dropped   uint64 // messages addressed to crashed (or stale) processes
	Bytes     uint64 // encoded size of all sent wire messages
	ByKind    [wire.KindCount]uint64
	BytesKind [wire.KindCount]uint64
}

// event is one unit of work for a process goroutine.
type event struct {
	kind int // 0 message, 1 timer
	from proc.ID
	msg  any
	key  proc.TimerKey
	tgen uint64
	inc  uint64 // receiver incarnation at arrival time (kind 0)
}

// Cluster owns the processes and their links.
type Cluster struct {
	cfg     Config
	nodes   []proc.Node
	envs    []*renv
	started bool
	stopped chan struct{}
	wg      sync.WaitGroup
	stats   Stats // atomic counters; snapshot via Stats()
}

// New creates a cluster; register nodes, then Start it.
func New(cfg Config) (*Cluster, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("runtime: N must be >= 1, got %d", cfg.N)
	}
	c := &Cluster{cfg: cfg, nodes: make([]proc.Node, cfg.N), stopped: make(chan struct{})}
	c.envs = make([]*renv, cfg.N)
	for i := range c.envs {
		c.envs[i] = newREnv(c, i)
	}
	return c, nil
}

// Register installs node as process id; must precede Start.
func (c *Cluster) Register(id proc.ID, node proc.Node) {
	if c.started {
		panic("runtime: Register after Start")
	}
	if c.nodes[id] != nil {
		panic(fmt.Sprintf("runtime: process %d registered twice", id))
	}
	c.nodes[id] = node
}

// Start runs every node's Start callback (synchronously, so the cluster is
// fully initialized when Start returns) and launches the process
// goroutines.
func (c *Cluster) Start() {
	if c.started {
		panic("runtime: double Start")
	}
	c.started = true
	for id, n := range c.nodes {
		if n == nil {
			panic(fmt.Sprintf("runtime: process %d not registered", id))
		}
	}
	for id := range c.nodes {
		env := c.envs[id]
		env.node = c.nodes[id]
		env.handleMu.Lock()
		env.node.Start(env)
		env.handleMu.Unlock()
	}
	for id := range c.nodes {
		c.wg.Add(1)
		go c.runProcess(id)
	}
}

// runProcess is the per-process event loop; it serializes all callbacks.
func (c *Cluster) runProcess(id proc.ID) {
	defer c.wg.Done()
	env := c.envs[id]
	// The loop keeps draining while the process is down (senders never
	// care), discarding inside handle; a Restart makes the same loop the
	// new incarnation's consumer.
	for {
		ev, ok := env.box.pop(c.stopped)
		if !ok {
			return
		}
		env.handle(ev)
	}
}

// Crash marks process id crashed: it stops sending, receiving, and firing
// timers, like a crash-stop failure. The crash is applied synchronously
// (serialized against the process's callbacks), so Crashed(id) holds when
// Crash returns.
func (c *Cluster) Crash(id proc.ID) {
	env := c.envs[id]
	env.handleMu.Lock()
	defer env.handleMu.Unlock()
	env.mu.Lock()
	if env.crashed {
		env.mu.Unlock()
		return
	}
	env.crashed = true
	for _, slot := range env.timers {
		slot.gen++
		if slot.timer != nil {
			slot.timer.Stop()
		}
	}
	node := env.node
	env.mu.Unlock()
	if cr, ok := node.(proc.Crashable); ok && node != nil {
		cr.OnCrash()
	}
}

// Crashed reports whether the process was crashed via Crash.
func (c *Cluster) Crashed(id proc.ID) bool { return c.envs[id].isCrashed() }

// Restart replaces crashed process id with the fresh incarnation built by
// build and starts it, all synchronously: build and Start run while the
// process's callback lock is held, so concurrent Inspect/LockProcess readers
// never observe a half-swapped process, and when Restart returns the new
// incarnation is live (Crashed(id) is false). Restarting a process that is
// not down is a no-op (mirroring netsim.RestartAt); it reports whether the
// swap happened.
//
// Messages that arrived while the process was down were dropped at arrival;
// messages still in flight across the downtime reach the new incarnation,
// exactly like the simulator's churn semantics. Messages already queued to
// the OLD incarnation but not yet processed are dropped by an incarnation
// check (the live analogue of "a crashed process receives nothing").
func (c *Cluster) Restart(id proc.ID, build func() proc.Node) bool {
	if build == nil {
		panic("runtime: Restart with nil build")
	}
	env := c.envs[id]
	env.handleMu.Lock()
	defer env.handleMu.Unlock()
	if !env.isCrashed() {
		return false
	}
	node := build()
	if node == nil {
		panic("runtime: Restart build returned nil node")
	}
	env.mu.Lock()
	env.crashed = false
	env.inc++
	env.node = node
	env.mu.Unlock()
	c.nodes[id] = node
	node.Start(env)
	return true
}

// Stats returns a snapshot of the link counters.
func (c *Cluster) Stats() Stats {
	var out Stats
	out.Sent = atomic.LoadUint64(&c.stats.Sent)
	out.Delivered = atomic.LoadUint64(&c.stats.Delivered)
	out.Dropped = atomic.LoadUint64(&c.stats.Dropped)
	out.Bytes = atomic.LoadUint64(&c.stats.Bytes)
	for k := range out.ByKind {
		out.ByKind[k] = atomic.LoadUint64(&c.stats.ByKind[k])
		out.BytesKind[k] = atomic.LoadUint64(&c.stats.BytesKind[k])
	}
	return out
}

// countSent tallies one transmission of msg (per destination, like netsim).
func (c *Cluster) countSent(msg any) {
	atomic.AddUint64(&c.stats.Sent, 1)
	if wm, ok := msg.(wire.Message); ok {
		k := wm.Kind()
		sz := uint64(wm.Size())
		atomic.AddUint64(&c.stats.Bytes, sz)
		atomic.AddUint64(&c.stats.ByKind[k], 1)
		atomic.AddUint64(&c.stats.BytesKind[k], sz)
	}
}

// Inspect runs f serialized against process id's callbacks: while f runs,
// no message, timer or crash callback of that process executes, so f may
// safely read (or, carefully, poke) the node's protocol state from any
// goroutine. f must not call Inspect or block on the cluster.
func (c *Cluster) Inspect(id proc.ID, f func()) {
	c.LockProcess(id)
	defer c.UnlockProcess(id)
	f()
}

// LockProcess and UnlockProcess are Inspect's primitive form, for callers
// that must avoid the closure: between them, no callback of process id
// executes. Allocation-free.
func (c *Cluster) LockProcess(id proc.ID)   { c.envs[id].handleMu.Lock() }
func (c *Cluster) UnlockProcess(id proc.ID) { c.envs[id].handleMu.Unlock() }

// Stop shuts the cluster down and waits for all process goroutines and
// pending timers to finish. The cluster cannot be restarted.
func (c *Cluster) Stop() {
	close(c.stopped)
	for _, env := range c.envs {
		env.stopAllTimers()
	}
	c.wg.Wait()
}

// renv implements proc.Env for one live process.
type renv struct {
	cluster *Cluster
	id      proc.ID
	node    proc.Node
	box     *mailbox
	start   time.Time

	// handleMu serializes node callbacks with Inspect: the consumer
	// goroutine holds it across every callback, so Inspect callers get a
	// consistent view of the protocol state. Uncontended in steady state.
	handleMu sync.Mutex

	mu      sync.Mutex
	crashed bool
	inc     uint64 // incarnation counter, bumped by Restart
	timers  map[proc.TimerKey]*timerSlot
}

type timerSlot struct {
	gen   uint64
	timer *time.Timer
}

func newREnv(c *Cluster, id proc.ID) *renv {
	return &renv{
		cluster: c,
		id:      id,
		box:     newMailbox(),
		start:   time.Now(),
		timers:  make(map[proc.TimerKey]*timerSlot),
	}
}

func (e *renv) ID() proc.ID        { return e.id }
func (e *renv) N() int             { return e.cluster.cfg.N }
func (e *renv) Now() time.Duration { return time.Since(e.start) }

func (e *renv) isCrashed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.crashed
}

// Send implements proc.Env.
func (e *renv) Send(to proc.ID, msg any) {
	if e.isCrashed() {
		return
	}
	e.cluster.countSent(msg)
	e.sendOne(to, msg)
}

// Multicast implements proc.Env: one transmission per destination over the
// channel links (each leg draws its own delay, like the unicast path). The
// payload pointer is shared by all destinations — the repository's standing
// "immutable once sent" contract — and dests is only read during the call.
func (e *renv) Multicast(dests *bitset.Set, msg any) {
	if e.isCrashed() {
		return
	}
	for to := 0; to < dests.Len(); to++ {
		if !dests.Contains(to) {
			continue
		}
		e.cluster.countSent(msg)
		e.sendOne(to, msg)
	}
}

// sendOne routes one copy of msg to its destination after the injected
// delay. Arrival (the mailbox push) is where a down receiver drops the
// message, mirroring the simulator's delivery-time drop.
func (e *renv) sendOne(to proc.ID, msg any) {
	lf := e.cluster.cfg.Fault
	if lf != nil && !lf.Admit(e.id, to) {
		// Chaos overlay refusal: the copy was sent (the caller counted it)
		// and the link ate it.
		atomic.AddUint64(&e.cluster.stats.Dropped, 1)
		return
	}
	dst := e.cluster.envs[to]
	var d time.Duration
	if f := e.cluster.cfg.Delay; f != nil {
		d = f(e.id, to, msg)
	}
	if lf != nil {
		d += lf.Delay(e.id, to)
	}
	if d <= 0 {
		dst.arriveMsg(e.id, msg)
		return
	}
	t := time.AfterFunc(d, func() {
		select {
		case <-e.cluster.stopped:
		default:
			dst.arriveMsg(e.id, msg)
		}
	})
	_ = t // in-flight messages are dropped wholesale at Stop
}

// arriveMsg is the arrival instant of one message copy: a down receiver
// drops it (indistinguishable from reception by a dead process); a live one
// enqueues it stamped with the receiver's current incarnation, so a copy
// that was queued behind a crash is not leaked into a later incarnation.
func (e *renv) arriveMsg(from proc.ID, msg any) {
	e.mu.Lock()
	if e.crashed {
		e.mu.Unlock()
		atomic.AddUint64(&e.cluster.stats.Dropped, 1)
		return
	}
	inc := e.inc
	e.mu.Unlock()
	e.box.push(event{kind: 0, from: from, msg: msg, inc: inc})
}

// SetTimer implements proc.Env.
func (e *renv) SetTimer(key proc.TimerKey, d time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return
	}
	slot := e.timers[key]
	if slot == nil {
		slot = &timerSlot{}
		e.timers[key] = slot
	} else if slot.timer != nil {
		slot.timer.Stop()
	}
	slot.gen++
	gen := slot.gen
	if d < 0 {
		d = 0
	}
	slot.timer = time.AfterFunc(d, func() {
		e.box.push(event{kind: 1, key: key, tgen: gen})
	})
}

// StopTimer implements proc.Env.
func (e *renv) StopTimer(key proc.TimerKey) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if slot := e.timers[key]; slot != nil {
		slot.gen++ // invalidate any in-flight fire
		if slot.timer != nil {
			slot.timer.Stop()
		}
	}
}

func (e *renv) stopAllTimers() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, slot := range e.timers {
		slot.gen++
		if slot.timer != nil {
			slot.timer.Stop()
		}
	}
}

// handle runs one event on the owning goroutine, serialized with Inspect.
func (e *renv) handle(ev event) {
	e.handleMu.Lock()
	defer e.handleMu.Unlock()
	switch ev.kind {
	case 0:
		e.mu.Lock()
		live := !e.crashed && e.inc == ev.inc
		node := e.node
		e.mu.Unlock()
		if !live {
			// Crashed after arrival, or a leftover of a previous
			// incarnation: the message dies with its addressee.
			atomic.AddUint64(&e.cluster.stats.Dropped, 1)
			return
		}
		node.OnMessage(ev.from, ev.msg)
		atomic.AddUint64(&e.cluster.stats.Delivered, 1)
		if f := e.cluster.cfg.OnDeliver; f != nil {
			f(e.id)
		}
	case 1:
		e.mu.Lock()
		slot := e.timers[ev.key]
		live := slot != nil && slot.gen == ev.tgen && !e.crashed
		node := e.node
		e.mu.Unlock()
		if live {
			node.OnTimer(ev.key)
		}
	}
}

var _ proc.Env = (*renv)(nil)

// mailbox is an unbounded MPSC queue: senders never block (links must not
// exert backpressure in the model) and the single consumer waits on a
// condition signal.
type mailbox struct {
	mu     sync.Mutex
	items  []event
	signal chan struct{}
}

func newMailbox() *mailbox {
	return &mailbox{signal: make(chan struct{}, 1)}
}

func (m *mailbox) push(ev event) {
	m.mu.Lock()
	m.items = append(m.items, ev)
	m.mu.Unlock()
	select {
	case m.signal <- struct{}{}:
	default:
	}
}

// pop blocks until an event is available or stop is closed.
func (m *mailbox) pop(stop <-chan struct{}) (event, bool) {
	for {
		m.mu.Lock()
		if len(m.items) > 0 {
			ev := m.items[0]
			m.items = m.items[1:]
			m.mu.Unlock()
			return ev, true
		}
		m.mu.Unlock()
		select {
		case <-m.signal:
		case <-stop:
			return event{}, false
		}
	}
}
