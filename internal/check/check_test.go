package check

import (
	"testing"
	"time"

	"repro/internal/proc"
	"repro/internal/sim"
)

func sampleSeq(leaders ...[]proc.ID) []LeaderSample {
	out := make([]LeaderSample, len(leaders))
	for i, l := range leaders {
		out[i] = LeaderSample{At: sim.Time(i) * sim.Time(time.Second), Leaders: l}
	}
	return out
}

func allCorrect(proc.ID) bool { return true }

func TestAnalyzeLeadersStable(t *testing.T) {
	// 10 samples, agreement on 1 from sample 4 onwards.
	var samples []LeaderSample
	for i := 0; i < 10; i++ {
		l := []proc.ID{1, 1, 1}
		if i < 4 {
			l = []proc.ID{0, 1, 2}
		}
		samples = append(samples, LeaderSample{At: sim.Time(i) * sim.Time(time.Second), Leaders: l})
	}
	rep := AnalyzeLeaders(samples, allCorrect)
	if !rep.Stabilized {
		t.Fatal("not stabilized")
	}
	if rep.Leader != 1 {
		t.Errorf("leader = %d", rep.Leader)
	}
	if rep.StabilizedAt != sim.Time(4*time.Second) {
		t.Errorf("stabilizedAt = %v", rep.StabilizedAt)
	}
	if rep.Changes == 0 {
		t.Error("churn not counted")
	}
}

func TestAnalyzeLeadersDisagreementAtEnd(t *testing.T) {
	rep := AnalyzeLeaders(sampleSeq(
		[]proc.ID{1, 1, 1},
		[]proc.ID{1, 1, 1},
		[]proc.ID{1, 2, 1},
	), allCorrect)
	if rep.Stabilized {
		t.Fatal("stabilized despite final disagreement")
	}
}

func TestAnalyzeLeadersFaultyLeaderRejected(t *testing.T) {
	correct := func(id proc.ID) bool { return id != 2 }
	var samples []LeaderSample
	for i := 0; i < 10; i++ {
		samples = append(samples, LeaderSample{
			At:      sim.Time(i) * sim.Time(time.Second),
			Leaders: []proc.ID{2, 2, proc.None}, // all elect the crashed 2
		})
	}
	rep := AnalyzeLeaders(samples, correct)
	if rep.Stabilized {
		t.Fatal("stabilized on a crashed leader")
	}
}

func TestAnalyzeLeadersIgnoresCrashedEstimates(t *testing.T) {
	correct := func(id proc.ID) bool { return id != 2 }
	var samples []LeaderSample
	for i := 0; i < 10; i++ {
		samples = append(samples, LeaderSample{
			At:      sim.Time(i) * sim.Time(time.Second),
			Leaders: []proc.ID{0, 0, proc.None}, // 2 crashed; others agree on 0
		})
	}
	rep := AnalyzeLeaders(samples, correct)
	if !rep.Stabilized || rep.Leader != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestAnalyzeLeadersTooRecentAgreement(t *testing.T) {
	// Agreement only in the last sample of 50: below MinTailFraction.
	var samples []LeaderSample
	for i := 0; i < 50; i++ {
		l := []proc.ID{0, 1, 0}
		if i == 49 {
			l = []proc.ID{0, 0, 0}
		}
		samples = append(samples, LeaderSample{At: sim.Time(i) * sim.Time(time.Second), Leaders: l})
	}
	rep := AnalyzeLeaders(samples, allCorrect)
	if rep.Stabilized {
		t.Fatal("stabilized despite agreement only at the last sample")
	}
}

func TestAnalyzeLeadersEmpty(t *testing.T) {
	rep := AnalyzeLeaders(nil, allCorrect)
	if rep.Stabilized {
		t.Fatal("empty timeline stabilized")
	}
}

func TestAnalyzeLeadersAllAgreeAlways(t *testing.T) {
	var samples []LeaderSample
	for i := 0; i < 10; i++ {
		samples = append(samples, LeaderSample{At: sim.Time(i) * sim.Time(time.Second), Leaders: []proc.ID{3, 3, 3, 3}})
	}
	rep := AnalyzeLeaders(samples, allCorrect)
	if !rep.Stabilized || rep.StabilizedAt != 0 || rep.Changes != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestSpreadOK(t *testing.T) {
	cases := []struct {
		levels []int64
		ok     bool
	}{
		{nil, true},
		{[]int64{0, 0, 0}, true},
		{[]int64{3, 4, 3}, true},
		{[]int64{3, 5, 3}, false},
		{[]int64{7}, true},
		{[]int64{0, 2}, false},
	}
	for _, c := range cases {
		if got := SpreadOK(c.levels); got != c.ok {
			t.Errorf("SpreadOK(%v) = %v, want %v", c.levels, got, c.ok)
		}
	}
}

func TestBoundTracker(t *testing.T) {
	b := NewBoundTracker(3)
	b.Observe([]int64{0, 1, 0})
	b.Observe([]int64{2, 1, 3})
	b.Observe([]int64{2, 2, 3})
	// B_j = [2, 2, 3]; B = 2; MaxEver = 3 <= B+1 -> ok.
	if b.B() != 2 {
		t.Errorf("B = %d", b.B())
	}
	if b.MaxEver() != 3 {
		t.Errorf("MaxEver = %d", b.MaxEver())
	}
	if !b.BoundOK() {
		t.Error("BoundOK = false, want true")
	}
	// Violate: one target shoots to 5.
	b.Observe([]int64{0, 0, 5})
	if b.BoundOK() {
		t.Error("BoundOK = true after violation")
	}
}

func TestBoundTrackerEmpty(t *testing.T) {
	b := NewBoundTracker(0)
	if !b.BoundOK() || b.B() != 0 || b.MaxEver() != 0 {
		t.Error("empty tracker not trivially OK")
	}
}

func TestTimeoutStable(t *testing.T) {
	ms := time.Millisecond
	stable := []time.Duration{ms, 2 * ms, 3 * ms, 3 * ms, 3 * ms, 3 * ms, 3 * ms, 3 * ms, 3 * ms, 3 * ms}
	if !TimeoutStable(stable, 0.5) {
		t.Error("stable series reported unstable")
	}
	unstable := []time.Duration{ms, 2 * ms, 3 * ms, 4 * ms, 5 * ms, 6 * ms, 7 * ms, 8 * ms, 9 * ms, 10 * ms}
	if TimeoutStable(unstable, 0.5) {
		t.Error("growing series reported stable")
	}
	if !TimeoutStable(nil, 0.5) || !TimeoutStable([]time.Duration{ms}, 0.5) {
		t.Error("degenerate series should be stable")
	}
}
