// Package check turns the paper's correctness properties into measurable
// verdicts over simulation traces:
//
//   - Eventual leadership (the Ω property, §2.2): there is a time after
//     which every correct process's leader() returns the same correct
//     process. AnalyzeLeaders detects it on a sampled leader timeline and
//     reports the stabilization time.
//   - Lemma 8 (Figure 3): within one process, max(susp_level) -
//     min(susp_level) <= 1 at every state. SpreadOK checks one state.
//   - Theorem 4 (Figure 3): no susp_level entry is ever larger than B+1,
//     where B is the smallest over j of the largest value ever taken by any
//     susp_level_i[j]. A BoundTracker accumulates the per-target global
//     maxima; since max_j B_j is the largest value ever seen anywhere,
//     Theorem 4 holds on a trace iff max_j B_j <= min_j B_j + 1.
package check

import (
	"time"

	"repro/internal/proc"
	"repro/internal/sim"
)

// LeaderSample is one synchronized observation of every process's leader
// estimate. Crashed processes are recorded as proc.None.
type LeaderSample struct {
	At      sim.Time
	Leaders []proc.ID
}

// StabilizationReport is the verdict of AnalyzeLeaders.
type StabilizationReport struct {
	// Stabilized is true when all correct processes agreed on the same
	// correct leader from StabilizedAt through the end of the run, and
	// that agreement suffix is at least MinTailFraction of the run.
	Stabilized bool
	// Leader is the agreed leader (valid when Stabilized).
	Leader proc.ID
	// StabilizedAt is the first sample time of the agreement suffix.
	StabilizedAt sim.Time
	// Changes counts samples in which some correct process's estimate
	// differed from the previous sample (leadership churn).
	Changes int
	// Samples is the number of samples analyzed.
	Samples int
	// LastDisagreement is the time of the last sample NOT in the final
	// agreement suffix (-1 when agreement held from the first sample).
	LastDisagreement sim.Time
}

// MinTailFraction is the fraction of the run that must be covered by the
// final agreement suffix for "Stabilized" to be declared: agreement that
// only appears in the last few samples of a run is indistinguishable from a
// transient and is not counted.
const MinTailFraction = 0.2

// AnalyzeLeaders computes a StabilizationReport. correct reports whether a
// process was correct (never crashed) during the run; samples must be in
// time order. An empty timeline is never stabilized.
func AnalyzeLeaders(samples []LeaderSample, correct func(proc.ID) bool) StabilizationReport {
	rep := StabilizationReport{Samples: len(samples), StabilizedAt: -1, LastDisagreement: -1}
	if len(samples) == 0 {
		return rep
	}

	agreeOn := func(s LeaderSample) (proc.ID, bool) {
		leader := proc.None
		for id, l := range s.Leaders {
			if !correct(id) {
				continue
			}
			if l == proc.None {
				return proc.None, false
			}
			if leader == proc.None {
				leader = l
			} else if l != leader {
				return proc.None, false
			}
		}
		if leader == proc.None || !correct(leader) {
			return proc.None, false
		}
		return leader, true
	}

	// Count churn.
	for i := 1; i < len(samples); i++ {
		for id := range samples[i].Leaders {
			if !correct(id) {
				continue
			}
			if samples[i].Leaders[id] != samples[i-1].Leaders[id] {
				rep.Changes++
				break
			}
		}
	}

	// The run must end in agreement on a correct leader.
	finalLeader, ok := agreeOn(samples[len(samples)-1])
	if !ok {
		return rep
	}

	// Walk backwards to the start of the agreement suffix.
	start := len(samples) - 1
	for start > 0 {
		l, ok := agreeOn(samples[start-1])
		if !ok || l != finalLeader {
			break
		}
		start--
	}
	if start > 0 {
		rep.LastDisagreement = samples[start-1].At
	}

	first, last := samples[0].At, samples[len(samples)-1].At
	suffix := last.Sub(samples[start].At)
	total := last.Sub(first)
	if total <= 0 {
		return rep
	}
	if float64(suffix) < MinTailFraction*float64(total) {
		return rep // agreement too recent to call stable
	}
	rep.Stabilized = true
	rep.Leader = finalLeader
	rep.StabilizedAt = samples[start].At
	return rep
}

// SpreadOK checks the Lemma 8 invariant on one susp_level array:
// max - min <= 1.
func SpreadOK(levels []int64) bool {
	if len(levels) == 0 {
		return true
	}
	min, max := levels[0], levels[0]
	for _, v := range levels[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return max-min <= 1
}

// BoundTracker accumulates, across all processes and all times, the largest
// value ever taken by susp_level[·][j] for each target j (the paper's B_j),
// and evaluates the Theorem 4 bound.
type BoundTracker struct {
	maxPerTarget []int64
}

// NewBoundTracker creates a tracker for n processes.
func NewBoundTracker(n int) *BoundTracker {
	return &BoundTracker{maxPerTarget: make([]int64, n)}
}

// Observe folds one process's current susp_level array into the tracker.
func (b *BoundTracker) Observe(levels []int64) {
	for j, v := range levels {
		if j < len(b.maxPerTarget) && v > b.maxPerTarget[j] {
			b.maxPerTarget[j] = v
		}
	}
}

// B returns min_j B_j, the paper's bound B (only meaningful at end of run).
func (b *BoundTracker) B() int64 {
	if len(b.maxPerTarget) == 0 {
		return 0
	}
	min := b.maxPerTarget[0]
	for _, v := range b.maxPerTarget[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// MaxEver returns max_j B_j, the largest susp_level value seen anywhere.
func (b *BoundTracker) MaxEver() int64 {
	var max int64
	for _, v := range b.maxPerTarget {
		if v > max {
			max = v
		}
	}
	return max
}

// BoundOK reports the Theorem 4 verdict: every value ever seen is <= B+1.
func (b *BoundTracker) BoundOK() bool {
	return b.MaxEver() <= b.B()+1
}

// TimeoutStable reports whether the timeout series stabilized: the last
// change happened at most tailFraction of the way from the end. Series must
// be time-ordered (value at sample i).
func TimeoutStable(series []time.Duration, tailFraction float64) bool {
	if len(series) < 2 {
		return true
	}
	lastChange := 0
	for i := 1; i < len(series); i++ {
		if series[i] != series[i-1] {
			lastChange = i
		}
	}
	return float64(len(series)-lastChange) >= tailFraction*float64(len(series))
}
