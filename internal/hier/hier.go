// Package hier holds the transport-free bookkeeping of a two-tier
// (federated) election: shards run the paper's Ω internally, and each
// shard's current leader participates by proxy — a delegate — in a parent
// cluster whose own Ω elects the leader-of-leaders.
//
// The package deliberately knows nothing about clusters, transports or
// schedulers. It provides three small deterministic machines the federation
// façade (star.Federation) drives from its epoch loop:
//
//   - Table: the delegate registry. Every change of a shard's leader is a
//     handoff that advances the shard's delegate incarnation; handoff
//     records delivered through the tier's total-order lane are admitted
//     only when their incarnation is current, so a deposed delegate can
//     never speak for its shard no matter how late its frames arrive.
//
//   - Tracker: the global-leader timeline. Sampled once per federation
//     epoch, it yields the tier-stabilization verdict (when the final
//     leader-of-leaders took hold, and how often it changed).
//
//   - Monitor: the federation invariant monitor. Fed the same epoch
//     samples, it checks the two liveness/consistency rules a federation
//     owes its users: a majority-of-shards healthy component must elect a
//     global leader within a bound, and a standing global leader must not
//     name a shard whose own election has moved on for longer than the
//     bound.
//
// Everything here is pure data manipulation: same call sequence, same
// results, on every transport.
package hier

import "fmt"

// None is the "no process / no leader" sentinel, matching the façade's
// convention.
const None = -1

// Table is the delegate registry of a federation: for each shard, the
// leader the federation last handed the delegate slot to (the issuer view)
// and the leader the tier's total-order lane has committed (the delivered
// view), each tagged with the delegate incarnation that produced it.
//
// The split matters: a handoff is issued the moment the federation observes
// a shard's election settle on a new leader, but it only becomes the
// shard's committed delegate when the corresponding record comes out of the
// tier's atomic broadcast. In between, stale records from superseded
// incarnations may still surface — Deliver rejects them by incarnation.
//
// Table is not safe for concurrent use; the federation serializes access.
type Table struct {
	shards int

	leaders []int    // issuer view: last handed-off leader per shard
	incs    []uint64 // issuer view: current delegate incarnation per shard

	committed []int    // delivered view: last admitted leader per shard
	comIncs   []uint64 // delivered view: incarnation of the admitted record

	handoffs uint64
	rejected uint64
}

// NewTable returns a registry for the given number of shards, all slots
// vacant (leader None, incarnation 0).
func NewTable(shards int) *Table {
	t := &Table{
		shards:    shards,
		leaders:   make([]int, shards),
		incs:      make([]uint64, shards),
		committed: make([]int, shards),
		comIncs:   make([]uint64, shards),
	}
	for i := range t.leaders {
		t.leaders[i] = None
		t.committed[i] = None
	}
	return t
}

// Shards returns the registry width.
func (t *Table) Shards() int { return t.shards }

// Handoff records that shard's election settled on leader and hands the
// delegate slot to it: the shard's incarnation advances and the new
// incarnation is returned — stamp it into the handoff record broadcast on
// the tier lane. Any record carrying an older incarnation is dead from this
// moment on (Deliver will reject it).
func (t *Table) Handoff(shard, leader int) uint64 {
	t.leaders[shard] = leader
	t.incs[shard]++
	t.handoffs++
	return t.incs[shard]
}

// Leader returns the issuer view of shard's delegate (the last handed-off
// leader, None before the first handoff); Incarnation the current delegate
// incarnation.
func (t *Table) Leader(shard int) int         { return t.leaders[shard] }
func (t *Table) Incarnation(shard int) uint64 { return t.incs[shard] }

// Deliver applies one handoff record that came out of the tier's
// total-order lane. It is admitted — committed becomes (leader, inc) —
// exactly when inc is the shard's current incarnation; records from
// superseded incarnations are rejected and counted, which is the mechanism
// that silences deposed delegates. Reports whether the record was admitted.
func (t *Table) Deliver(shard, leader int, inc uint64) bool {
	if shard < 0 || shard >= t.shards || inc != t.incs[shard] {
		t.rejected++
		return false
	}
	t.committed[shard] = leader
	t.comIncs[shard] = inc
	return true
}

// Committed returns the delivered view of shard's delegate: the leader of
// the last admitted record (None before any), with its incarnation.
func (t *Table) Committed(shard int) (leader int, inc uint64) {
	return t.committed[shard], t.comIncs[shard]
}

// Handoffs counts handoffs issued; Rejected counts delivered records that
// were refused for carrying a superseded incarnation.
func (t *Table) Handoffs() uint64 { return t.handoffs }
func (t *Table) Rejected() uint64 { return t.rejected }

// Handoff records ride the tier's int64 atomic-broadcast payloads. The
// layout keeps the value positive and self-identifying:
//
//	bits  0..15  leader (shard-local id)
//	bits 16..31  shard index
//	bits 32..55  incarnation (low 24 bits)
//	bits 56..62  magic (MagicHandoff), so foreign payloads sharing the
//	             lane are recognized and ignored rather than misparsed
const (
	handoffMagic      = MagicHandoff
	handoffMagicShift = MagicShift
	maxShardIndex     = 1<<16 - 1
	maxLeaderID       = 1<<16 - 1
	incMask           = 1<<24 - 1
)

// The federation's lanes multiplex several record kinds over the same
// int64 atomic-broadcast payloads. Every kind claims a distinct magic in
// the top byte (bit 63 stays clear so values remain positive); this
// registry is the single authority, so new kinds cannot collide.
//
//	0x2A  handoff    (this package: EncodeHandoff/DecodeHandoff)
//	0x2B  offer      (fedlane: a member offering a submission upward)
//	0x2C  submit     (fedlane: a delegate forwarding onto the tier lane)
//	0x2D  decide     (fedlane: a tier-ordered decision diffusing down)
const (
	// MagicShift is the bit position of the magic byte in every record.
	MagicShift = 56

	MagicHandoff = 0x2A
	MagicOffer   = 0x2B
	MagicSubmit  = 0x2C
	MagicDecide  = 0x2D
)

// Magic extracts the record-kind magic of a lane payload, or 0 for
// negative values (which no record kind produces).
func Magic(v int64) int64 {
	if v < 0 {
		return 0
	}
	return v >> MagicShift
}

// The encoding's hard limits, exported for the façade's validation.
const (
	// MaxShards is the largest shard count a federation may have.
	MaxShards = maxShardIndex + 1
	// MaxShardSize is the largest per-shard membership (local ids must
	// fit the leader field).
	MaxShardSize = maxLeaderID + 1
)

// EncodeHandoff packs a handoff record. Incarnations are carried modulo
// 2^24 — far above any realistic handoff count per run, so the decoded
// value compares equal to the Table's full counter in every reachable
// execution.
func EncodeHandoff(shard, leader int, inc uint64) (int64, error) {
	if shard < 0 || shard > maxShardIndex {
		return 0, fmt.Errorf("hier: shard %d out of range", shard)
	}
	if leader < 0 || leader > maxLeaderID {
		return 0, fmt.Errorf("hier: leader %d out of range", leader)
	}
	v := int64(handoffMagic)<<handoffMagicShift |
		int64(inc&incMask)<<32 |
		int64(shard)<<16 |
		int64(leader)
	return v, nil
}

// DecodeHandoff unpacks a handoff record. ok is false for payloads that do
// not carry the handoff magic — application traffic sharing the tier lane
// passes through untouched.
func DecodeHandoff(v int64) (shard, leader int, inc uint64, ok bool) {
	if v < 0 || v>>handoffMagicShift != handoffMagic {
		return 0, 0, 0, false
	}
	return int(v >> 16 & maxShardIndex), int(v & maxLeaderID), uint64(v >> 32 & incMask), true
}
