package hier

import "time"

// Tracker folds the per-epoch global-leader samples into the federation's
// tier-stabilization verdict: when the current leader-of-leaders took hold
// (the time of the last change to a non-None leader) and how often the
// global leader changed across the run.
//
// Tracker is not safe for concurrent use; the federation serializes access.
type Tracker struct {
	cur        int // current global leader (flat id), None when unknown
	changes    int
	samples    int
	lastChange time.Duration
	everSet    bool
}

// NewTracker returns an empty timeline (no leader).
func NewTracker() *Tracker { return &Tracker{cur: None} }

// Sample records the global leader observed at federation time at (None
// when the tier has no agreed leader, or its shard no committed delegate).
// Reports whether the sample changed the current leader.
func (t *Tracker) Sample(at time.Duration, leader int) bool {
	t.samples++
	if leader == t.cur {
		return false
	}
	t.cur = leader
	t.changes++
	t.lastChange = at
	if leader != None {
		t.everSet = true
	}
	return true
}

// Current returns the global leader as of the last sample (None when
// unknown).
func (t *Tracker) Current() int { return t.cur }

// Stabilization returns the tier verdict: whether the federation currently
// holds a global leader, and the time that leader took hold (meaningful
// only when stabilized).
func (t *Tracker) Stabilization() (at time.Duration, stabilized bool) {
	return t.lastChange, t.cur != None
}

// Changes counts global-leader changes observed; Samples the observations.
func (t *Tracker) Changes() int { return t.changes }
func (t *Tracker) Samples() int { return t.samples }
