package hier

import (
	"testing"
	"time"
)

func TestHandoffCodecRoundTrip(t *testing.T) {
	cases := []struct {
		shard, leader int
		inc           uint64
	}{
		{0, 0, 1},
		{7, 3, 42},
		{31, 1023, 9999},
		{maxShardIndex, maxLeaderID, incMask},
	}
	for _, c := range cases {
		v, err := EncodeHandoff(c.shard, c.leader, c.inc)
		if err != nil {
			t.Fatalf("encode(%v): %v", c, err)
		}
		if v < 0 {
			t.Fatalf("encode(%v): negative payload %d", c, v)
		}
		shard, leader, inc, ok := DecodeHandoff(v)
		if !ok || shard != c.shard || leader != c.leader || inc != c.inc&incMask {
			t.Fatalf("roundtrip(%v) = (%d,%d,%d,%v)", c, shard, leader, inc, ok)
		}
	}
}

func TestHandoffCodecRejectsForeignPayloads(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 123456, 1 << 62} {
		if _, _, _, ok := DecodeHandoff(v); ok {
			t.Fatalf("DecodeHandoff(%d) accepted a non-handoff payload", v)
		}
	}
}

func TestHandoffCodecRange(t *testing.T) {
	if _, err := EncodeHandoff(-1, 0, 1); err == nil {
		t.Fatal("negative shard accepted")
	}
	if _, err := EncodeHandoff(0, maxLeaderID+1, 1); err == nil {
		t.Fatal("oversized leader accepted")
	}
}

// TestTableSupersededRejected is the unit-level half of the deposed-delegate
// guarantee: once a newer handoff has been issued for a shard, records
// stamped with any older incarnation are rejected no matter when they are
// delivered.
func TestTableSupersededRejected(t *testing.T) {
	tab := NewTable(4)
	if l := tab.Leader(2); l != None {
		t.Fatalf("vacant slot leader = %d, want None", l)
	}

	inc1 := tab.Handoff(2, 5) // shard 2 elects 5
	inc2 := tab.Handoff(2, 7) // ...then 7, deposing 5's delegate
	if inc2 != inc1+1 {
		t.Fatalf("incarnations did not advance: %d then %d", inc1, inc2)
	}

	// The deposed delegate's frame arrives late: rejected.
	if tab.Deliver(2, 5, inc1) {
		t.Fatal("superseded incarnation admitted")
	}
	if got, _ := tab.Committed(2); got != None {
		t.Fatalf("committed view moved on a rejected record: %d", got)
	}

	// The current incarnation's frame: admitted.
	if !tab.Deliver(2, 7, inc2) {
		t.Fatal("current incarnation rejected")
	}
	if got, inc := tab.Committed(2); got != 7 || inc != inc2 {
		t.Fatalf("committed = (%d,%d), want (7,%d)", got, inc, inc2)
	}

	// Replays of the old frame stay dead forever.
	if tab.Deliver(2, 5, inc1) {
		t.Fatal("superseded incarnation admitted on replay")
	}
	if tab.Handoffs() != 2 || tab.Rejected() != 2 {
		t.Fatalf("counters = (%d,%d), want (2,2)", tab.Handoffs(), tab.Rejected())
	}

	// Out-of-range shards are rejected, not a panic.
	if tab.Deliver(99, 0, 1) {
		t.Fatal("out-of-range shard admitted")
	}
}

func TestTrackerStabilization(t *testing.T) {
	tr := NewTracker()
	if _, ok := tr.Stabilization(); ok {
		t.Fatal("empty tracker claims stabilization")
	}
	tr.Sample(10*time.Millisecond, None)
	tr.Sample(20*time.Millisecond, 3)
	tr.Sample(40*time.Millisecond, 3)
	tr.Sample(60*time.Millisecond, 9) // global leader moved
	tr.Sample(80*time.Millisecond, 9)
	at, ok := tr.Stabilization()
	if !ok || at != 60*time.Millisecond {
		t.Fatalf("stabilization = (%v,%v), want (60ms,true)", at, ok)
	}
	if tr.Changes() != 2 || tr.Samples() != 5 || tr.Current() != 9 {
		t.Fatalf("changes=%d samples=%d current=%d", tr.Changes(), tr.Samples(), tr.Current())
	}

	// Losing the leader un-stabilizes.
	tr.Sample(100*time.Millisecond, None)
	if _, ok := tr.Stabilization(); ok {
		t.Fatal("tracker claims stabilization with no leader")
	}
}

func TestMonitorGlobalLiveness(t *testing.T) {
	m := NewMonitor(4, 50*time.Millisecond)
	leaders := []int{0, 1, None, 2} // 3/4 healthy: majority

	// Healthy majority, no global leader: the clock arms but does not fire
	// within the bound.
	m.OnSample(10*time.Millisecond, leaders, None, 8)
	m.OnSample(40*time.Millisecond, leaders, None, 8)
	if m.Total() != 0 {
		t.Fatalf("fired before the bound: %d", m.Total())
	}
	// Past the bound: exactly one violation per continuous window.
	m.OnSample(70*time.Millisecond, leaders, None, 8)
	m.OnSample(90*time.Millisecond, leaders, None, 8)
	if m.Total() != 1 {
		t.Fatalf("violations = %d, want 1", m.Total())
	}
	if v := m.Violations(); len(v) != 1 || v[0].Rule != RuleGlobalLiveness {
		t.Fatalf("unexpected violations: %+v", v)
	}

	// A global leader appearing clears and re-arms.
	m.OnSample(100*time.Millisecond, leaders, 9, 8)
	m.OnSample(200*time.Millisecond, leaders, None, 8)
	m.OnSample(210*time.Millisecond, leaders, None, 8)
	if m.Total() != 1 {
		t.Fatalf("re-fired inside the new window: %d", m.Total())
	}
}

func TestMonitorStaleGlobal(t *testing.T) {
	m := NewMonitor(2, 50*time.Millisecond)
	// Global leader is shard 1 local 3 (flat 1*8+3 = 11), but shard 1's own
	// election says 5.
	leaders := []int{0, 5}
	m.OnSample(0, leaders, 11, 8)
	m.OnSample(30*time.Millisecond, leaders, 11, 8)
	if m.Total() != 0 {
		t.Fatalf("fired before the bound: %d", m.Total())
	}
	m.OnSample(80*time.Millisecond, leaders, 11, 8)
	if m.Total() != 1 {
		t.Fatalf("violations = %d, want 1", m.Total())
	}
	if v := m.Violations(); v[0].Rule != RuleStaleGlobal {
		t.Fatalf("unexpected rule: %q", v[0].Rule)
	}
	// Handoff catches up: condition clears.
	m.OnSample(90*time.Millisecond, []int{0, 3}, 11, 8)
	m.OnSample(200*time.Millisecond, []int{0, 3}, 11, 8)
	if m.Total() != 1 {
		t.Fatalf("fired after clearing: %d", m.Total())
	}
}
