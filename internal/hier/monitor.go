package hier

import (
	"fmt"
	"time"
)

// Monitor rule names (stable strings, reported in violations).
const (
	// RuleGlobalLiveness: a majority-of-shards healthy component held for
	// longer than the bound without the federation electing a global
	// leader.
	RuleGlobalLiveness = "global-liveness"
	// RuleStaleGlobal: the standing global leader named a shard whose own
	// election had settled on a different leader for longer than the
	// bound (the handoff pipeline wedged).
	RuleStaleGlobal = "stale-global"
)

// Violation is one federation invariant breach.
type Violation struct {
	At     time.Duration
	Rule   string
	Detail string
}

// Monitor checks the two invariants a federation owes its users,
// continuously, from the same epoch samples that feed the Tracker:
//
//  1. Liveness: while a majority of shards are healthy (their own election
//     agreed on a leader), the federation must elect a global leader
//     within the bound.
//
//  2. Consistency: a standing global leader must not name a shard whose
//     own agreed leader has differed from the committed delegate for
//     longer than the bound — handoffs may lag, but not wedge.
//
// Both rules are deadline-with-hysteresis: the clock starts when the bad
// condition appears, resets when it clears, and fires one violation per
// continuous breach window (re-arming only after the condition clears).
//
// Monitor is not safe for concurrent use; the federation serializes access.
type Monitor struct {
	shards int
	bound  time.Duration

	livenessSince time.Duration // when majority-healthy-without-leader began
	livenessArmed bool
	livenessFired bool

	staleSince time.Duration // when global-leader-vs-shard divergence began
	staleArmed bool
	staleFired bool

	violations []Violation
	total      uint64
}

// NewMonitor returns a monitor for a federation of the given width; bound
// is the re-election deadline (how long either bad condition may persist).
func NewMonitor(shards int, bound time.Duration) *Monitor {
	return &Monitor{shards: shards, bound: bound}
}

// maxViolations caps the retained violation list (the counter keeps
// counting past it).
const maxViolations = 64

func (m *Monitor) violate(at time.Duration, rule, detail string) {
	m.total++
	if len(m.violations) < maxViolations {
		m.violations = append(m.violations, Violation{At: at, Rule: rule, Detail: detail})
	}
}

// OnSample feeds one epoch observation: the per-shard agreed leaders
// (shardLeaders[s] is None while shard s's own election is unsettled) and
// the sampled global leader (flat id, None when absent). shardSize
// converts the global flat id back to (shard, local) for the consistency
// rule.
func (m *Monitor) OnSample(at time.Duration, shardLeaders []int, global, shardSize int) {
	// Rule 1: majority of shards healthy, no global leader.
	healthy := 0
	for _, l := range shardLeaders {
		if l != None {
			healthy++
		}
	}
	if healthy > m.shards/2 && global == None {
		if !m.livenessArmed {
			m.livenessArmed = true
			m.livenessSince = at
		} else if !m.livenessFired && at-m.livenessSince > m.bound {
			m.livenessFired = true
			m.violate(at, RuleGlobalLiveness,
				fmt.Sprintf("%d/%d shards healthy since %v with no global leader", healthy, m.shards, m.livenessSince))
		}
	} else {
		m.livenessArmed = false
		m.livenessFired = false
	}

	// Rule 2: standing global leader diverged from its shard's election.
	diverged := false
	if global != None && shardSize > 0 {
		shard := global / shardSize
		local := global % shardSize
		if shard < len(shardLeaders) {
			if sl := shardLeaders[shard]; sl != None && sl != local {
				diverged = true
				if !m.staleArmed {
					m.staleArmed = true
					m.staleSince = at
				} else if !m.staleFired && at-m.staleSince > m.bound {
					m.staleFired = true
					m.violate(at, RuleStaleGlobal,
						fmt.Sprintf("global leader %d (shard %d local %d) but shard elected %d since %v",
							global, shard, local, sl, m.staleSince))
				}
			}
		}
	}
	if !diverged {
		m.staleArmed = false
		m.staleFired = false
	}
}

// Violations returns the retained breach list (capped); Total counts every
// breach window observed.
func (m *Monitor) Violations() []Violation { return m.violations }
func (m *Monitor) Total() uint64           { return m.total }
